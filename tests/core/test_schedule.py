"""Tests for repro.core.schedule: the schedule representation and safety checks."""

import pytest

from repro.core.schedule import ExecutionUnit, ParallelPhase, Schedule
from repro.isl.relations import FiniteRelation


def two_phase_schedule():
    p1 = ParallelPhase(
        "first", (ExecutionUnit.single("s", (1,)), ExecutionUnit.single("s", (2,)))
    )
    p2 = ParallelPhase(
        "second", (ExecutionUnit.chain("s", [(3,), (4,)]),)
    )
    return Schedule.from_phases("test", [p1, p2])


class TestStructure:
    def test_unit_constructors(self):
        assert ExecutionUnit.single("s", (1, 2)).instances == (("s", (1, 2)),)
        assert ExecutionUnit.chain("s", [(1,), (2,)]).kind == "chain"
        assert ExecutionUnit.block([("a", (1,)), ("b", (2,))]).work == 2

    def test_counts(self):
        sched = two_phase_schedule()
        assert sched.num_phases == 2
        assert sched.total_work == 4
        assert sched.span == 1 + 2
        assert sched.max_parallelism == 2
        assert sched.ideal_speedup() == pytest.approx(4 / 3)
        assert sched.instance_counts() == {"first": 2, "second": 2}

    def test_empty_phases_dropped(self):
        sched = Schedule.from_phases(
            "t", [ParallelPhase("empty", ()), ParallelPhase("x", (ExecutionUnit.single("s", (1,)),))]
        )
        assert sched.num_phases == 1

    def test_sequential_factory(self):
        sched = Schedule.sequential("seq", [("s", (1,)), ("s", (2,))])
        assert sched.num_phases == 1
        assert sched.span == 2
        assert sched.max_parallelism == 1

    def test_phase_metrics(self):
        phase = ParallelPhase("p", (ExecutionUnit.chain("s", [(1,), (2,), (3,)]), ExecutionUnit.single("s", (9,))))
        assert phase.work == 4
        assert phase.span == 3
        assert len(phase.instances()) == 4


class TestCoverage:
    def test_covers(self):
        sched = two_phase_schedule()
        assert sched.covers([("s", (i,)) for i in (1, 2, 3, 4)])
        assert not sched.covers([("s", (i,)) for i in (1, 2, 3)])
        assert not sched.covers([("s", (i,)) for i in (1, 2, 3, 4, 5)])

    def test_duplicate_instance_fails_coverage(self):
        p = ParallelPhase(
            "p", (ExecutionUnit.single("s", (1,)), ExecutionUnit.single("s", (1,)))
        )
        sched = Schedule.from_phases("dup", [p])
        assert not sched.covers([("s", (1,))])

    def test_execution_index(self):
        sched = two_phase_schedule()
        index = sched.execution_index()
        assert index[("s", (1,))][0] == 0
        assert index[("s", (4,))] == (1, 0, 1)


class TestDependenceSafety:
    def test_respects_cross_phase(self):
        sched = two_phase_schedule()
        deps = FiniteRelation.from_pairs([((1,), (3,)), ((2,), (4,))])
        assert sched.respects(deps)
        assert sched.violations(deps) == []

    def test_respects_within_unit_order(self):
        sched = two_phase_schedule()
        deps = FiniteRelation.from_pairs([((3,), (4,))])
        assert sched.respects(deps)

    def test_violation_within_phase_across_units(self):
        sched = two_phase_schedule()
        deps = FiniteRelation.from_pairs([((1,), (2,))])
        assert not sched.respects(deps)
        assert len(sched.violations(deps)) == 1

    def test_violation_backwards_phases(self):
        sched = two_phase_schedule()
        deps = FiniteRelation.from_pairs([((3,), (1,))])
        assert not sched.respects(deps)

    def test_violation_wrong_order_inside_unit(self):
        sched = two_phase_schedule()
        deps = FiniteRelation.from_pairs([((4,), (3,))])
        assert not sched.respects(deps)

    def test_label_filter(self):
        p = ParallelPhase(
            "p", (ExecutionUnit.single("a", (1,)), ExecutionUnit.single("b", (2,)))
        )
        sched = Schedule.from_phases("t", [p])
        deps = FiniteRelation.from_pairs([((1,), (2,))])
        # with the label filter, only same-label instances are constrained
        assert sched.respects(deps, label="a")
        assert not sched.respects(deps)

    def test_summary_keys(self):
        summary = two_phase_schedule().summary()
        assert {"name", "phases", "work", "span", "max_parallelism", "phase_sizes"} <= set(summary)
