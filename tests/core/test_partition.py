"""Tests for repro.core.partition: the three-set partitioning (eq. 5)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import symbolic_three_set_partition, three_set_partition
from repro.dependence import DependenceAnalysis, symbolic_dependence_relation
from repro.isl.relations import FiniteRelation
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop
from repro.workloads.synthetic import random_coupled_loop


def partition_of(prog, params=None):
    analysis = DependenceAnalysis(prog, params or {})
    return (
        three_set_partition(analysis.iteration_space_points, analysis.iteration_dependences),
        analysis,
    )


class TestFigure2Partition:
    """The worked 1-D example of figure 2 (N = 20)."""

    def test_paper_sets(self):
        partition, _ = partition_of(figure2_loop(20))
        assert sorted(p[0] for p in partition.independent) == [7, 12, 14, 16, 18, 20]
        assert sorted(p[0] for p in partition.initial) == [1, 2, 3, 4, 5, 6]
        assert sorted(p[0] for p in partition.p1) == [1, 2, 3, 4, 5, 6, 7, 12, 14, 16, 18, 20]
        assert partition.p2 == frozenset()
        assert sorted(p[0] for p in partition.p3) == [8, 9, 10, 11, 13, 15, 17, 19]
        assert partition.w == frozenset()

    def test_invariants(self):
        partition, _ = partition_of(figure2_loop(20))
        assert partition.is_complete()
        assert partition.respects_phase_order()
        counts = partition.counts()
        assert counts["space"] == 20 and counts["P1"] == 12 and counts["P3"] == 8


class TestFigure1Partition:
    def test_counts_at_10x10(self):
        partition, _ = partition_of(figure1_loop(10, 10))
        counts = partition.counts()
        assert counts["space"] == 100
        assert counts["P1"] + counts["P2"] + counts["P3"] == 100
        assert counts["P2"] == 2
        assert counts["W"] == 2
        assert partition.is_complete()
        assert partition.respects_phase_order()

    def test_w_subset_of_p2_and_has_p1_predecessor(self):
        partition, _ = partition_of(figure1_loop(30, 40))
        assert partition.w <= partition.p2
        preds = partition.rd.predecessor_map()
        for w in partition.w:
            assert any(p in partition.p1 for p in preds[w])

    def test_p1_p3_have_no_internal_dependences(self):
        partition, _ = partition_of(figure1_loop(20, 20))
        for src, dst in partition.rd.pairs:
            assert not (src in partition.p1 and dst in partition.p1)
            assert not (src in partition.p3 and dst in partition.p3)


class TestExample2Partition:
    def test_single_intermediate_iteration_at_n12(self):
        """The paper: 'there is only a single iteration in the intermediate set,
        particularly iteration (2, 6)'."""
        partition, _ = partition_of(example2_loop(12))
        assert partition.p2 == frozenset({(2, 6)})
        assert partition.w == frozenset({(2, 6)})

    def test_larger_n_has_nonempty_intermediate(self):
        partition, _ = partition_of(example2_loop(30))
        assert len(partition.p2) >= 1
        assert partition.is_complete()


class TestPartitionProperties:
    @given(st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_random_loops_invariants(self, seed):
        rng = random.Random(seed)
        spec = random_coupled_loop(rng, n1=6, n2=6)
        analysis = DependenceAnalysis(spec.program, {})
        partition = three_set_partition(
            analysis.iteration_space_points, analysis.iteration_dependences
        )
        assert partition.is_complete()
        assert partition.respects_phase_order()
        assert partition.w <= partition.p2

    def test_empty_relation_puts_everything_in_p1(self):
        space = [(i,) for i in range(1, 6)]
        partition = three_set_partition(space, FiniteRelation(frozenset(), 1, 1))
        assert partition.p1 == frozenset(space)
        assert not partition.p2 and not partition.p3

    def test_chain_relation(self):
        space = [(i,) for i in range(1, 6)]
        rd = FiniteRelation.from_pairs([((i,), (i + 1,)) for i in range(1, 5)])
        partition = three_set_partition(space, rd)
        assert partition.p1 == frozenset({(1,)})
        assert partition.p2 == frozenset({(2,), (3,), (4,)})
        assert partition.p3 == frozenset({(5,)})
        assert partition.w == frozenset({(2,)})


class TestSymbolicPartition:
    def test_figure2_containment(self):
        prog = figure2_loop(20)
        sym = symbolic_three_set_partition(
            prog.iteration_space(), symbolic_dependence_relation(prog)
        )
        concrete = sym.concrete()
        exact, _ = partition_of(prog)
        # rational approximation: P1 under-approximates, P3 over-approximates
        assert set(concrete["P1"]) <= set(exact.p1)
        assert set(concrete["P3"]) >= set(exact.p3)
        assert set(concrete["space"]) == set(exact.space)

    def test_figure1_containment(self):
        prog = figure1_loop(10, 10)
        sym = symbolic_three_set_partition(
            prog.iteration_space(), symbolic_dependence_relation(prog)
        )
        concrete = sym.concrete()
        exact, _ = partition_of(prog)
        assert set(concrete["P1"]) <= set(exact.p1)
        assert set(concrete["P3"]) >= set(exact.p3)

    def test_parametric_partition_terminates_and_binds(self):
        prog = figure1_loop()  # symbolic N1, N2
        sym = symbolic_three_set_partition(
            prog.iteration_space(), symbolic_dependence_relation(prog)
        )
        bound = sym.bind_parameters({"N1": 6, "N2": 6})
        concrete = bound.concrete()
        assert set(concrete["space"]) == {(i, j) for i in range(1, 7) for j in range(1, 7)}
