"""End-to-end equivalence of the array-native pipeline with the set pipeline.

PR 1 proved the partitioning *engines* equivalent (test_bulk_equivalence);
this module proves the whole pipeline equivalent: program → exact Rd
(hash join vs sort join) → three-set / dataflow partition → schedule
(tuple phases vs :class:`ArrayPhase`) → execution.  For every example
workload both paths must produce bit-identical P1/P2/P3/W sets, wavefronts,
per-phase instances and :func:`validate_schedule` results.
"""

import numpy as np
import pytest

from repro.analysis.pipelines import (
    pipeline_mismatches,
    run_array_pipeline,
    run_set_pipeline,
)
from repro.core.dataflow import DataflowPartition, dataflow_partition, dataflow_schedule
from repro.core.partition import three_set_partition
from repro.core.partitioner import recurrence_chain_partition
from repro.core.schedule import ArrayPhase, ParallelPhase, Schedule
from repro.dependence.analysis import DependenceAnalysis
from repro.isl.relations import FiniteRelation
from repro.runtime.executor import execute_schedule, execute_sequential, validate_schedule
from repro.runtime.threaded import execute_schedule_threaded
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop
from repro.workloads.synthetic import large_triangular_loop, large_uniform_loop

PROGRAMS = [
    figure1_loop(12, 12),
    figure2_loop(20),
    example2_loop(12),
    large_uniform_loop(15, 11),
    large_triangular_loop(14),
]
PROGRAM_IDS = [p.name for p in PROGRAMS]


class TestPipelineEquivalence:
    @pytest.mark.parametrize("prog", PROGRAMS, ids=PROGRAM_IDS)
    def test_pipelines_bit_identical(self, prog):
        set_run = run_set_pipeline(prog)
        array_run = run_array_pipeline(prog)
        assert pipeline_mismatches(set_run, array_run) == []
        assert array_run.partition == set_run.partition
        assert array_run.partition.counts() == set_run.partition.counts()
        assert array_run.partition.is_complete()
        assert array_run.partition.respects_phase_order()
        for pa, ps in zip(array_run.schedule.phases, set_run.schedule.phases):
            assert (len(pa), pa.work, pa.span) == (len(ps), ps.work, ps.span)

    @pytest.mark.parametrize("prog", PROGRAMS, ids=PROGRAM_IDS)
    def test_wavefronts_identical(self, prog):
        analysis = DependenceAnalysis(prog, {})
        rd = analysis.iteration_dependences
        waves_s = dataflow_partition(analysis.iteration_space_points, rd, engine="set")
        waves_a = dataflow_partition(analysis.iteration_space_array, rd, engine="vector")
        assert waves_a.wavefronts == waves_s.wavefronts
        assert waves_a == waves_s

    @pytest.mark.parametrize("prog", PROGRAMS, ids=PROGRAM_IDS)
    def test_validation_results_identical(self, prog):
        set_run = run_set_pipeline(prog)
        array_run = run_array_pipeline(prog)
        rep_s = validate_schedule(prog, set_run.schedule, {}, dependences=set_run.rd)
        rep_a = validate_schedule(prog, array_run.schedule, {}, dependences=array_run.rd)
        assert rep_a.ok and rep_s.ok
        assert (
            rep_a.covers_all_instances,
            rep_a.respects_dependences,
            rep_a.arrays_match,
            rep_a.mismatched_arrays,
        ) == (
            rep_s.covers_all_instances,
            rep_s.respects_dependences,
            rep_s.arrays_match,
            rep_s.mismatched_arrays,
        )

    @pytest.mark.parametrize("prog", PROGRAMS, ids=PROGRAM_IDS)
    def test_threaded_execution_matches_sequential(self, prog):
        sched_a = run_array_pipeline(prog).schedule
        assert any(isinstance(p, ArrayPhase) for p in sched_a.phases)
        run = execute_schedule_threaded(prog, sched_a, n_threads=3)
        reference = execute_sequential(prog, {})
        for name in reference:
            assert np.array_equal(reference[name], run.store[name])
        assert run.instances_executed == sum(len(p.points) for p in sched_a.phases)


class TestArrayBackedPartitionViews:
    def test_vector_partition_stays_lazy_for_array_consumers(self):
        prog = large_uniform_loop(20, 15)
        analysis = DependenceAnalysis(prog, {}, engine="vector")
        rd = analysis.iteration_dependences
        part = three_set_partition(analysis.iteration_space_array, rd, engine="vector")
        assert part.array_backed
        assert part._sets == {}  # nothing materialised yet
        sched = dataflow_partition(analysis.iteration_space_array, rd, engine="vector")
        assert sched.array_backed
        assert sched._wavefronts is None
        # Touching a set view materialises only that view.
        _ = part.p1
        assert "p1" in part._sets and "p2" not in part._sets

    def test_level_arrays_round_trip(self):
        prog = large_triangular_loop(12)
        analysis = DependenceAnalysis(prog, {})
        rd = analysis.iteration_dependences
        set_part = dataflow_partition(analysis.iteration_space_points, rd, engine="set")
        vec_part = dataflow_partition(analysis.iteration_space_array, rd, engine="vector")
        off_s, rows_s = set_part.level_arrays()
        off_v, rows_v = vec_part.level_arrays()
        assert np.array_equal(off_s, off_v)
        assert np.array_equal(rows_s, rows_v)
        assert set_part.level_sizes() == vec_part.level_sizes()
        rebuilt = DataflowPartition.from_arrays(off_v, rows_v, rd)
        assert rebuilt.wavefronts == set_part.wavefronts
        assert rebuilt == set_part

    def test_level_arrays_with_empty_leading_wavefront(self):
        # A constructor-built partition may hold empty waves; the dimension
        # must come from the first non-empty one (or the relation).
        rd = FiniteRelation(frozenset(), 2, 2)
        part = DataflowPartition((frozenset(), frozenset({(1, 2)})), rd)
        offsets, rows = part.level_arrays()
        assert offsets.tolist() == [0, 0, 1]
        assert rows.tolist() == [[1, 2]]
        all_empty = DataflowPartition((frozenset(),), rd)
        offsets, rows = all_empty.level_arrays()
        assert offsets.tolist() == [0, 0] and rows.shape == (0, 2)

    def test_from_arrays_validates_offsets(self):
        rd = DependenceAnalysis(figure2_loop(6), {}).iteration_dependences
        rows = np.array([[1], [2], [3]], dtype=np.int64)
        with pytest.raises(ValueError):
            DataflowPartition.from_arrays(np.array([0, 2]), rows, rd)
        with pytest.raises(ValueError):
            DataflowPartition.from_arrays(np.array([1, 3]), rows, rd)


class TestRecurrenceChainArrayPhases:
    def test_large_single_pair_program_gets_array_doall_phases(self):
        prog = large_uniform_loop(80, 80)  # 6400 points: above the threshold
        result = recurrence_chain_partition(prog)
        assert result.scheme == "recurrence-chains"
        kinds = [type(p) for p in result.schedule.phases]
        assert ArrayPhase in kinds  # P1/P3 emitted as array views
        report = validate_schedule(
            prog,
            result.schedule,
            {},
            dependences=result.analysis.iteration_dependences,
        )
        assert report.ok and report.respects_dependences

    def test_small_program_keeps_tuple_phases_and_matches(self):
        prog = figure1_loop(10, 10)
        result = recurrence_chain_partition(prog)
        assert all(isinstance(p, ParallelPhase) for p in result.schedule.phases)
        report = validate_schedule(
            prog,
            result.schedule,
            {},
            dependences=result.analysis.iteration_dependences,
        )
        assert report.ok


class TestScheduleFromArrays:
    def make(self):
        rows = np.array([[1, 1], [1, 2], [2, 1], [2, 2], [3, 3]], dtype=np.int64)
        offsets = np.array([0, 2, 4, 5], dtype=np.int64)
        return Schedule.from_arrays("s", "stmt", offsets, rows, scheme="dataflow")

    def test_structure_and_metrics(self):
        sched = self.make()
        assert sched.num_phases == 3
        assert [p.name for p in sched.phases] == [
            "wavefront-0",
            "wavefront-1",
            "wavefront-2",
        ]
        assert sched.total_work == 5
        assert sched.span == 3
        assert sched.max_parallelism == 2
        assert sched.meta["scheme"] == "dataflow"

    def test_units_are_lazy_and_equivalent(self):
        sched = self.make()
        phase = sched.phases[0]
        assert phase._units is None
        tuple_phase = ParallelPhase("wavefront-0", phase.units)
        assert phase == tuple_phase
        assert hash(phase) == hash(tuple_phase)  # eq/hash contract across kinds
        assert phase.instances() == tuple_phase.instances()

    def test_empty_levels_dropped(self):
        rows = np.array([[1], [2]], dtype=np.int64)
        offsets = np.array([0, 0, 2, 2], dtype=np.int64)
        sched = Schedule.from_arrays("s", "stmt", offsets, rows)
        assert sched.num_phases == 1
        assert sched.phases[0].name == "wavefront-1"

    def test_bad_offsets_rejected(self):
        rows = np.array([[1], [2]], dtype=np.int64)
        with pytest.raises(ValueError):
            Schedule.from_arrays("s", "stmt", np.array([0, 1]), rows)
        with pytest.raises(ValueError):
            Schedule.from_arrays("s", "stmt", np.array([1, 2]), rows)
        with pytest.raises(ValueError):  # non-monotonic: would replay rows
            Schedule.from_arrays("s", "stmt", np.array([0, 2, 1, 2]), rows)

    def test_executor_handles_mixed_phase_kinds(self):
        prog = figure2_loop(20)
        analysis = DependenceAnalysis(prog, {})
        rd = analysis.iteration_dependences
        arr_sched = dataflow_schedule(
            prog.name, analysis.iteration_space_array, rd, engine="vector"
        )
        tup_sched = dataflow_schedule(
            prog.name, analysis.iteration_space_points, rd, engine="set"
        )
        mixed = Schedule(
            "mixed", (arr_sched.phases[0],) + tup_sched.phases[1:], {}
        )
        result = execute_schedule(prog, mixed, {})
        reference = execute_sequential(prog, {})
        for name in reference:
            assert np.array_equal(reference[name], result[name])


class TestArrayBackedIsConstructionFact:
    def test_accessors_do_not_flip_array_backed(self):
        prog = figure2_loop(20)
        analysis = DependenceAnalysis(prog, {})
        rd = analysis.iteration_dependences
        part = three_set_partition(analysis.iteration_space_points, rd, engine="set")
        assert not part.array_backed
        part.p1_array(), part.p3_array()  # inspection must not change behavior
        assert not part.array_backed
        waves = dataflow_partition(analysis.iteration_space_points, rd, engine="set")
        assert not waves.array_backed
        waves.level_arrays()
        assert not waves.array_backed

    def test_uniformity_ignores_duplicate_space_rows(self):
        from repro.dependence.distance import is_uniform_relation

        rel = FiniteRelation.from_pairs([((0, 0), (1, 1))])
        points = [(0, 0), (0, 0), (1, 1)]
        assert is_uniform_relation(rel, points) == is_uniform_relation(
            rel, np.array(points, dtype=np.int64)
        )

    def test_stored_arrays_are_read_only(self):
        # The lazy tuple views cache data derived from the stored arrays; an
        # in-place edit through any alias must raise, never silently desync.
        prog = figure2_loop(20)
        analysis = DependenceAnalysis(prog, {})
        rd = analysis.iteration_dependences
        sched = dataflow_schedule(
            prog.name, analysis.iteration_space_array, rd, engine="vector"
        )
        phase = sched.phases[0]
        _ = phase.units  # materialise the tuple view
        with pytest.raises(ValueError):
            phase.points[0, 0] = 999
        part = three_set_partition(
            analysis.iteration_space_array, rd, engine="vector"
        )
        with pytest.raises(ValueError):
            part.p1_array()[0, 0] = 999
        src, dst = rd.as_arrays()
        with pytest.raises(ValueError):
            src[0, 0] = 999
