"""Tests for repro.core.statement: the §3.3 statement-level extension."""

import numpy as np

from repro.core.statement import UnifiedIndexMap, build_statement_space
from repro.dependence import DependenceAnalysis
from repro.isl.lexorder import lex_lt
from repro.workloads.examples import cholesky_loop, example3_loop, figure1_loop


class TestUnifiedVectors:
    def test_width_and_positions(self):
        prog = example3_loop(6)
        space = build_statement_space(prog, {})
        # deepest statement s1 sits under 3 loops -> width 1 + 2*3 = 7
        assert space.width == 7
        assert set(space.positions) == {"s1", "s2"}

    def test_unified_vectors_are_unique(self):
        prog = example3_loop(6)
        space = build_statement_space(prog, {})
        assert len(set(space.unified)) == len(space.unified)

    def test_program_order_is_lexicographic_order(self):
        for prog, params in [
            (example3_loop(6), {}),
            (cholesky_loop(nmat=1, m=2, n=4, nrhs=1), {}),
            (figure1_loop(4, 4), {}),
        ]:
            space = build_statement_space(prog, params)
            seq = prog.sequential_iterations(params)
            assert space.sequential_order_is_lexicographic(seq), prog.name

    def test_instance_of_roundtrip(self):
        prog = example3_loop(6)
        space = build_statement_space(prog, {})
        back = space.instance_of()
        for inst, point in zip(space.instances, space.unified):
            assert inst in back[point]

    def test_instances_match_sequential_execution(self):
        prog = example3_loop(8)
        space = build_statement_space(prog, {})
        assert list(space.instances) == [
            (label, tuple(it)) for label, it in prog.sequential_iterations({})
        ]


class TestUnifiedIndexMap:
    def test_unify_needs_no_space(self):
        """The §3.3 mapping is a pure function of the program's syntax —
        usable before (and without) building any statement space."""
        prog = example3_loop(6)
        index_map = UnifiedIndexMap.from_program(prog)
        space = build_statement_space(prog, {})
        assert index_map.width == space.width
        assert index_map.positions == dict(space.positions)
        for (label, iteration), point in zip(space.instances, space.unified):
            assert index_map.unify(label, iteration) == point

    def test_build_constructs_exactly_one_space(self, monkeypatch):
        """Regression: build_statement_space used to construct a throwaway
        StatementLevelSpace (empty unified, empty rd) just to call unify."""
        import repro.core.statement as statement_mod

        constructed = []
        original = statement_mod.StatementLevelSpace.__init__

        def counting(self, *args, **kwargs):
            constructed.append(self)
            original(self, *args, **kwargs)

        monkeypatch.setattr(
            statement_mod.StatementLevelSpace, "__init__", counting
        )
        for engine in ("vector", "set"):
            constructed.clear()
            statement_mod.build_statement_space(
                example3_loop(6), {}, engine=engine
            )
            assert len(constructed) == 1, engine

    def test_unify_array_interleaves_like_unify(self):
        prog = cholesky_loop(nmat=1, m=2, n=4, nrhs=1)
        index_map = UnifiedIndexMap.from_program(prog)
        analysis = DependenceAnalysis(prog, {})
        for ctx in prog.statement_contexts():
            label = ctx.statement.label
            iters = analysis.statement_domain_array(label)
            batch = index_map.unify_array(label, iters)
            assert batch.shape == (len(iters), index_map.width)
            for row, iteration in zip(batch.tolist(), iters.tolist()):
                assert tuple(row) == index_map.unify(label, iteration)


class TestArrayPath:
    def test_engines_build_identical_spaces(self):
        for prog in (example3_loop(10), cholesky_loop(nmat=1, m=2, n=4, nrhs=1)):
            set_space = build_statement_space(prog, {}, engine="set")
            vec_space = build_statement_space(prog, {}, engine="vector")
            assert set_space.instances == vec_space.instances
            assert set_space.unified == vec_space.unified
            assert np.array_equal(set_space.unified_array, vec_space.unified_array)
            assert np.array_equal(set_space.stmt_ids, vec_space.stmt_ids)
            assert set_space.rd == vec_space.rd

    def test_space_array_rows_are_lex_sorted(self):
        space = build_statement_space(example3_loop(8), {}, engine="vector")
        rows = list(map(tuple, space.space_array.tolist()))
        assert rows == sorted(rows)

    def test_stmt_ids_of_roundtrip_and_rejects_foreign_rows(self):
        import pytest

        space = build_statement_space(example3_loop(8), {}, engine="vector")
        ids = space.stmt_ids_of(space.unified_array[::-1])
        assert np.array_equal(ids, space.stmt_ids[::-1])
        foreign = space.unified_array[:1] + 1000
        with pytest.raises(KeyError):
            space.stmt_ids_of(foreign)


class TestStatementLevelDependences:
    def test_rd_is_forward_oriented(self):
        prog = example3_loop(40)
        space = build_statement_space(prog, {})
        assert len(space.rd) > 0
        for src, dst in space.rd.pairs:
            assert lex_lt(src, dst)

    def test_rd_points_are_instances(self):
        prog = example3_loop(40)
        space = build_statement_space(prog, {})
        all_points = set(space.unified)
        for src, dst in space.rd.pairs:
            assert src in all_points and dst in all_points

    def test_rd_consistent_with_pair_analysis(self):
        prog = example3_loop(40)
        analysis = DependenceAnalysis(prog, {})
        space = build_statement_space(prog, {}, analysis)
        n_pairs = sum(
            len({(a, b) for a, b in d.relation.pairs if a != b})
            for d in analysis.nonempty_pair_dependences()
        )
        # unified pairs may merge duplicates (same pair from both orientations)
        assert 0 < len(space.rd) <= n_pairs

    def test_cholesky_dependences_exist(self):
        prog = cholesky_loop(nmat=1, m=2, n=4, nrhs=1)
        space = build_statement_space(prog, {})
        assert len(space.rd) > 0
