"""Tests for repro.core.statement: the §3.3 statement-level extension."""

from repro.core.statement import build_statement_space
from repro.dependence import DependenceAnalysis
from repro.isl.lexorder import lex_lt
from repro.workloads.examples import cholesky_loop, example3_loop, figure1_loop


class TestUnifiedVectors:
    def test_width_and_positions(self):
        prog = example3_loop(6)
        space = build_statement_space(prog, {})
        # deepest statement s1 sits under 3 loops -> width 1 + 2*3 = 7
        assert space.width == 7
        assert set(space.positions) == {"s1", "s2"}

    def test_unified_vectors_are_unique(self):
        prog = example3_loop(6)
        space = build_statement_space(prog, {})
        assert len(set(space.unified)) == len(space.unified)

    def test_program_order_is_lexicographic_order(self):
        for prog, params in [
            (example3_loop(6), {}),
            (cholesky_loop(nmat=1, m=2, n=4, nrhs=1), {}),
            (figure1_loop(4, 4), {}),
        ]:
            space = build_statement_space(prog, params)
            seq = prog.sequential_iterations(params)
            assert space.sequential_order_is_lexicographic(seq), prog.name

    def test_instance_of_roundtrip(self):
        prog = example3_loop(6)
        space = build_statement_space(prog, {})
        back = space.instance_of()
        for inst, point in zip(space.instances, space.unified):
            assert inst in back[point]

    def test_instances_match_sequential_execution(self):
        prog = example3_loop(8)
        space = build_statement_space(prog, {})
        assert list(space.instances) == [
            (label, tuple(it)) for label, it in prog.sequential_iterations({})
        ]


class TestStatementLevelDependences:
    def test_rd_is_forward_oriented(self):
        prog = example3_loop(40)
        space = build_statement_space(prog, {})
        assert len(space.rd) > 0
        for src, dst in space.rd.pairs:
            assert lex_lt(src, dst)

    def test_rd_points_are_instances(self):
        prog = example3_loop(40)
        space = build_statement_space(prog, {})
        all_points = set(space.unified)
        for src, dst in space.rd.pairs:
            assert src in all_points and dst in all_points

    def test_rd_consistent_with_pair_analysis(self):
        prog = example3_loop(40)
        analysis = DependenceAnalysis(prog, {})
        space = build_statement_space(prog, {}, analysis)
        n_pairs = sum(
            len({(a, b) for a, b in d.relation.pairs if a != b})
            for d in analysis.nonempty_pair_dependences()
        )
        # unified pairs may merge duplicates (same pair from both orientations)
        assert 0 < len(space.rd) <= n_pairs

    def test_cholesky_dependences_exist(self):
        prog = cholesky_loop(nmat=1, m=2, n=4, nrhs=1)
        space = build_statement_space(prog, {})
        assert len(space.rd) > 0
