"""Tests for repro.core.dataflow: iterative dataflow partitioning."""

import pytest

from repro.core.dataflow import dataflow_partition, dataflow_schedule
from repro.core.statement import build_statement_space
from repro.dependence import DependenceAnalysis
from repro.isl.relations import FiniteRelation
from repro.workloads.examples import cholesky_loop, figure1_loop


def chain_relation(n):
    return FiniteRelation.from_pairs([((i,), (i + 1,)) for i in range(1, n)])


class TestDataflowPartition:
    def test_chain_gives_one_wavefront_per_node(self):
        space = [(i,) for i in range(1, 6)]
        partition = dataflow_partition(space, chain_relation(5))
        assert partition.num_steps == 5
        assert [sorted(w) for w in partition.wavefronts] == [[(i,)] for i in range(1, 6)]

    def test_independent_points_one_step(self):
        space = [(i,) for i in range(10)]
        partition = dataflow_partition(space, FiniteRelation(frozenset(), 1, 1))
        assert partition.num_steps == 1
        assert partition.total_points == 10

    def test_invariants(self):
        space = [(i,) for i in range(1, 9)]
        rd = FiniteRelation.from_pairs(
            [((1,), (3,)), ((2,), (3,)), ((3,), (7,)), ((4,), (8,))]
        )
        partition = dataflow_partition(space, rd)
        assert partition.is_complete(space)
        assert partition.respects_dependences()
        # number of steps == longest path length (3 -> 7 has depth 3: 1,3,7)
        assert partition.num_steps == 3

    def test_step_count_equals_longest_chain(self):
        prog = figure1_loop(30, 40)
        analysis = DependenceAnalysis(prog, {})
        partition = dataflow_partition(
            analysis.iteration_space_points, analysis.iteration_dependences
        )
        closure = analysis.iteration_dependences.transitive_closure()
        longest = 1
        for src in closure.domain():
            longest = max(longest, 1 + len({dst for s, dst in closure.pairs if s == src}))
        assert partition.num_steps <= longest + 1
        assert partition.respects_dependences()
        assert partition.is_complete(analysis.iteration_space_points)

    def test_cyclic_relation_detected(self):
        space = [(1,), (2,)]
        rd = FiniteRelation.from_pairs([((1,), (2,)), ((2,), (1,))])
        with pytest.raises(RuntimeError):
            dataflow_partition(space, rd)

    def test_max_steps_guard(self):
        space = [(i,) for i in range(1, 50)]
        with pytest.raises(RuntimeError):
            dataflow_partition(space, chain_relation(49), max_steps=5)

    def test_level_of(self):
        space = [(i,) for i in range(1, 4)]
        partition = dataflow_partition(space, chain_relation(3))
        levels = partition.level_of()
        assert levels[(1,)] == 0 and levels[(3,)] == 2


class TestDataflowSchedule:
    def test_schedule_structure(self):
        space = [(i,) for i in range(1, 5)]
        schedule = dataflow_schedule("test", space, chain_relation(4), label="s")
        assert schedule.num_phases == 4
        assert schedule.total_work == 4
        assert schedule.meta["num_steps"] == 4

    def test_schedule_with_instance_mapping(self):
        space = [(1,), (2,)]
        mapping = {(1,): [("a", (1,)), ("b", (1,))], (2,): [("a", (2,))]}
        schedule = dataflow_schedule(
            "test", space, FiniteRelation(frozenset(), 1, 1), instances_of=mapping
        )
        assert schedule.total_work == 3

    def test_cholesky_statement_level_dataflow(self):
        prog = cholesky_loop(nmat=2, m=2, n=6, nrhs=1)
        space = build_statement_space(prog, {})
        partition = dataflow_partition(sorted(space.points), space.rd)
        assert partition.is_complete(space.points)
        assert partition.respects_dependences()
        assert partition.num_steps > 5  # genuinely sequential structure
