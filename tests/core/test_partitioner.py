"""End-to-end tests for Algorithm 1 (repro.core.partitioner)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import recurrence_chain_partition
from repro.core.strategy import PlanConfig, plan
from repro.ir.builder import aref, assign, loop, program
from repro.runtime import execute_sequential, validate_schedule
from repro.runtime.backends import ExecConfig, execute
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)
from repro.workloads.synthetic import random_coupled_loop


class TestSchemeSelection:
    def test_single_pair_full_rank_uses_chains(self):
        assert recurrence_chain_partition(figure1_loop(10, 10)).scheme == "recurrence-chains"
        assert recurrence_chain_partition(figure2_loop(20)).scheme == "recurrence-chains"
        assert recurrence_chain_partition(example2_loop(12)).scheme == "recurrence-chains"

    def test_imperfect_nest_uses_dataflow(self):
        assert recurrence_chain_partition(example3_loop(20)).scheme == "dataflow"
        assert (
            recurrence_chain_partition(cholesky_loop(nmat=1, m=2, n=4, nrhs=1)).scheme
            == "dataflow"
        )

    def test_force_dataflow(self):
        result = recurrence_chain_partition(figure1_loop(10, 10), force_dataflow=True)
        assert result.scheme == "dataflow"
        # dataflow and chain schedules execute the same instances
        chain_result = recurrence_chain_partition(figure1_loop(10, 10))
        assert set(result.schedule.instances()) == set(chain_result.schedule.instances())


class TestScheduleSafety:
    @pytest.mark.parametrize(
        "prog",
        [
            figure1_loop(12, 15),
            figure2_loop(20),
            example2_loop(12),
            example2_loop(25),
            example3_loop(35),
        ],
        ids=["fig1", "fig2", "ex2-small", "ex2-larger", "ex3"],
    )
    def test_schedule_is_semantically_correct(self, prog):
        result = recurrence_chain_partition(prog)
        deps = (
            result.statement_space.rd
            if result.statement_space is not None
            else result.analysis.iteration_dependences
        )
        report = validate_schedule(prog, result.schedule, {}, dependences=deps, seeds=(0, 1))
        assert report.ok, str(report)
        assert report.respects_dependences

    def test_three_phases_for_chain_scheme(self):
        result = recurrence_chain_partition(figure1_loop(20, 30))
        assert result.schedule.num_phases == 3
        names = [p.name for p in result.schedule.phases]
        assert "P1" in names[0] and "P2" in names[1] and "P3" in names[2]

    def test_figure2_has_two_phases(self):
        # empty intermediate set: P2 phase is dropped entirely
        result = recurrence_chain_partition(figure2_loop(20))
        assert result.schedule.num_phases == 2

    def test_summary_contains_partition_counts(self):
        result = recurrence_chain_partition(figure1_loop(10, 10))
        s = result.summary()
        assert s["P1"] == 82 and s["P2"] == 2 and s["P3"] == 16
        assert s["scheme"] == "recurrence-chains"
        assert s["theorem1_bound"] >= s["longest_chain"]

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_random_single_pair_loops(self, seed):
        rng = random.Random(seed)
        spec = random_coupled_loop(rng, n1=6, n2=6, force_full_rank=True)
        result = recurrence_chain_partition(spec.program)
        # Single-statement dataflow results stay at iteration level (the §3.3
        # statement space is only built for multi-statement programs).
        deps = (
            result.statement_space.rd
            if result.statement_space is not None
            else result.analysis.iteration_dependences
        )
        report = validate_schedule(spec.program, result.schedule, {}, dependences=deps, seeds=(0,))
        assert report.ok, f"seed {seed}: {report}"


class TestExample4:
    def test_dataflow_step_count_independent_of_nmat(self):
        """The L dimension carries no dependences, so the number of dataflow
        partitioning steps does not change with NMAT (allows scaled-down runs)."""
        steps = []
        for nmat in (1, 2):
            result = recurrence_chain_partition(cholesky_loop(nmat=nmat, m=2, n=6, nrhs=1))
            steps.append(result.schedule.num_phases)
        assert steps[0] == steps[1]

    def test_cholesky_schedule_valid(self):
        prog = cholesky_loop(nmat=1, m=2, n=5, nrhs=1)
        result = recurrence_chain_partition(prog)
        report = validate_schedule(
            prog, result.schedule, {}, dependences=result.statement_space.rd, seeds=(0,)
        )
        assert report.ok, str(report)


class TestMultiStatementSoundness:
    """Regression: the chain branch must not claim multi-statement programs.

    Found while building the PR 9 serving differential (logged in ROADMAP):
    on a multi-statement nest whose extra statement rewrites a *constant*
    subscript (``x[0,0]`` every iteration), the single coupled pair drove the
    recurrence-chains branch, whose three-phase schedule executes exactly one
    statement label — the other statements' instances were never scheduled and
    their WAW dependence on the constant cell never ordered, so the plan
    executed bit-different from ``execute_sequential`` under intra-phase
    shuffle.  The branch now gates on single-statement programs and these
    shapes fall to the §3.3 statement-level dataflow branch.
    """

    @staticmethod
    def _constant_cell_prog():
        # s1 carries the only coupled pair (y(I1) <- y(I1-1)); s2 rewrites
        # the constant cell x[0,0] every iteration (pure WAW chain).
        return program(
            "waw-constant-cell",
            loop(
                "I1",
                1,
                6,
                assign("s1", aref("y", "I1"), [aref("y", "I1-1")]),
                assign("s2", aref("x", 0, 0), [aref("y", "I1")]),
            ),
            array_shapes={"x": (4, 4), "y": (8,)},
        )

    @staticmethod
    def _serving_falsifier_prog():
        # The shape the PR 9 Hypothesis hunt found: only s1<->s2 couple on y,
        # s3's instances (writes to x) were dropped entirely by the old branch.
        return program(
            "serving-falsifier",
            loop(
                "I1",
                1,
                4,
                assign("s1", aref("y", "-I1+4")),
                assign("s2", aref("y", "I1"), [aref("x", "-2*I1+11", "2*I1+1")]),
                assign("s3", aref("x", "-I1+6", 3)),
            ),
            array_shapes={"x": (16, 16), "y": (8,)},
        )

    @pytest.mark.parametrize(
        "factory", ["_constant_cell_prog", "_serving_falsifier_prog"]
    )
    def test_chain_branch_skips_multi_statement(self, factory):
        prog = getattr(self, factory)()
        p = plan(
            prog,
            config=PlanConfig(strategies=("recurrence-chains", "dataflow")),
            cache=False,
        )
        assert p.scheme == "dataflow"
        skipped = dict(p.skipped)
        assert "recurrence-chains" in skipped
        assert "single statement" in skipped["recurrence-chains"]

    @pytest.mark.parametrize(
        "factory", ["_constant_cell_prog", "_serving_falsifier_prog"]
    )
    def test_default_plan_matches_sequential_under_shuffle(self, factory):
        prog = getattr(self, factory)()
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        for seed in (0, 1, 2, 3):
            out = execute(
                prog, p.schedule, {}, config=ExecConfig(backend="serial", seed=seed)
            )
            for name in ref:
                assert np.array_equal(ref[name], out.store[name]), (
                    f"{prog.name}: array {name!r} diverges from sequential "
                    f"execution under shuffle seed {seed} (strategy {p.strategy})"
                )

    def test_old_shim_takes_dataflow(self):
        # The deprecated dispatch must make the same call: chains raise
        # PartitioningNotApplicable internally, dataflow handles the program.
        result = recurrence_chain_partition(self._constant_cell_prog())
        assert result.scheme == "dataflow"
