"""Tests for repro.core.chains: monotonic chain extraction (Lemma 1)."""

import pytest

from repro.core.chains import (
    MonotonicChain,
    chains_from_recurrence,
    chains_from_relation,
    split_into_monotonic_pairs,
    verify_disjoint_chains,
)
from repro.core.partition import three_set_partition
from repro.core.recurrence import AffineRecurrence
from repro.dependence import DependenceAnalysis
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop


def setup(prog):
    analysis = DependenceAnalysis(prog, {})
    partition = three_set_partition(
        analysis.iteration_space_points, analysis.iteration_dependences
    )
    recurrence = AffineRecurrence.from_pair(analysis.single_coupled_pair())
    return analysis, partition, recurrence


class TestMonotonicChain:
    def test_must_be_increasing(self):
        MonotonicChain(((1, 1), (2, 0)))
        with pytest.raises(ValueError):
            MonotonicChain(((2, 0), (1, 1)))

    def test_accessors(self):
        chain = MonotonicChain(((1,), (3,), (9,)))
        assert len(chain) == 3
        assert chain.start == (1,) and chain.end == (9,)
        assert str(chain) == "(1,) -> (3,) -> (9,)"


class TestFigure2Splitting:
    def test_paper_chain_split(self):
        """The solution chain 6 -> 9 -> 3 -> 15 splits into the monotonic pairs
        6 -> 9, 3 -> 9 and 3 -> 15 (figure 2)."""
        analysis = DependenceAnalysis(figure2_loop(20), {})
        pairs = split_into_monotonic_pairs(analysis.iteration_dependences)
        as_scalars = {(a[0], b[0]) for a, b in pairs}
        assert {(6, 9), (3, 9), (3, 15)} <= as_scalars
        # every pair is lexicographically forward
        assert all(a < b for a, b in pairs)


class TestChainExtraction:
    def test_figure1_recurrence_chains_cover_p2_disjointly(self):
        _, partition, recurrence = setup(figure1_loop(30, 40))
        chains = chains_from_recurrence(partition, recurrence)
        assert verify_disjoint_chains(chains, partition.p2)
        assert len(chains) == len(partition.w)

    def test_figure1_graph_chains_agree_with_recurrence_chains(self):
        _, partition, recurrence = setup(figure1_loop(30, 40))
        from_rec = {c.points for c in chains_from_recurrence(partition, recurrence)}
        from_rel = {c.points for c in chains_from_relation(partition)}
        assert from_rec == from_rel

    def test_example2_chains(self):
        _, partition, recurrence = setup(example2_loop(30))
        chains = chains_from_recurrence(partition, recurrence)
        assert verify_disjoint_chains(chains, partition.p2)
        # every chain starts at a W iteration
        assert {c.start for c in chains} == set(partition.w)

    def test_chain_steps_are_direct_dependences(self):
        analysis, partition, recurrence = setup(figure1_loop(40, 60))
        rel = analysis.iteration_dependences
        for chain in chains_from_recurrence(partition, recurrence):
            for a, b in zip(chain.points, chain.points[1:]):
                assert (a, b) in rel

    def test_empty_intermediate_set_gives_no_chains(self):
        _, partition, recurrence = setup(figure2_loop(20))
        assert partition.p2 == frozenset()
        assert chains_from_recurrence(partition, recurrence) == []
        assert chains_from_relation(partition) == []

    def test_verify_disjoint_chains_detects_overlap(self):
        chains = [MonotonicChain(((1,), (2,))), MonotonicChain(((2,), (3,)))]
        assert not verify_disjoint_chains(chains, {(1,), (2,), (3,)})

    def test_verify_disjoint_chains_detects_missing_point(self):
        chains = [MonotonicChain(((1,), (2,)))]
        assert not verify_disjoint_chains(chains, {(1,), (2,), (3,)})
        assert verify_disjoint_chains(chains, {(1,), (2,)})


class TestChainsRespectRelation:
    """The new dependence-coverage check behind the recurrence branch."""

    @staticmethod
    def _partition():
        # Φ = {1..4} with the chain relation 1→2→3→4: P1={1}, P2={2,3}, P3={4}.
        from repro.isl.relations import FiniteRelation

        rd = FiniteRelation.from_pairs([((1,), (2,)), ((2,), (3,)), ((3,), (4,))])
        return three_set_partition({(1,), (2,), (3,), (4,)}, rd)

    def test_single_chain_covering_p2_respects(self):
        from repro.core.chains import chains_respect_relation

        partition = self._partition()
        chains = [MonotonicChain(((2,), (3,)))]
        assert chains_respect_relation(chains, partition)

    def test_split_chains_break_internal_edge(self):
        from repro.core.chains import chains_respect_relation

        partition = self._partition()
        # 2 and 3 on *different* chains: the P2-internal edge 2→3 would run
        # concurrently, so the decomposition must be rejected.
        chains = [MonotonicChain(((2,),)), MonotonicChain(((3,),))]
        assert not chains_respect_relation(chains, partition)

    def test_uncovered_p2_endpoint_rejected(self):
        from repro.core.chains import chains_respect_relation

        partition = self._partition()
        chains = [MonotonicChain(((2,),))]  # (3,) on no chain at all
        assert not chains_respect_relation(chains, partition)

    def test_graph_walk_chains_always_respect_single_pair(self):
        from repro.core.chains import chains_respect_relation

        _, partition, recurrence = setup(figure1_loop(10, 10))
        for chains in (
            chains_from_recurrence(partition, recurrence),
            chains_from_relation(partition),
        ):
            assert chains_respect_relation(chains, partition)
