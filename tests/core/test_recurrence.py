"""Tests for repro.core.recurrence: the affine recurrence and Theorem 1."""

import math
from fractions import Fraction

import pytest

from repro.core.recurrence import (
    AffineRecurrence,
    chain_length_bound_holds,
    iteration_space_diameter,
    theorem1_bound,
)
from repro.dependence import DependenceAnalysis
from repro.isl.linalg import RationalMatrix
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop


def recurrence_of(prog, params=None):
    analysis = DependenceAnalysis(prog, params or {})
    pair = analysis.single_coupled_pair()
    return AffineRecurrence.from_pair(pair)


class TestFigure1Recurrence:
    def test_successor_map(self):
        rec = recurrence_of(figure1_loop(10, 10))
        # j = (3*i1 - 2, 2*i1 + i2 - 2)
        assert rec.next_integer((1, 1)) == (1, 1)  # fixed point (self dependence)
        assert rec.next_integer((2, 3)) == (4, 5)
        assert rec.next_integer((4, 5)) == (10, 11)

    def test_inverse_roundtrip(self):
        rec = recurrence_of(figure1_loop(10, 10))
        inv = rec.inverse()
        for point in [(2, 3), (4, 5), (7, 1)]:
            forward = rec.next_integer(point)
            assert forward is not None
            assert inv.next_integer(forward) == point

    def test_non_integer_image(self):
        rec = recurrence_of(figure1_loop(10, 10)).inverse()
        # the inverse divides by 3; most points have no integer predecessor
        assert rec.next_integer((5, 5)) is None

    def test_distance_matches_paper_pattern(self):
        rec = recurrence_of(figure1_loop(10, 10))
        # d_0 = i0(T - I) + u; the observed distances are (2,2), (4,4), (6,6)
        assert rec.distance_at((2, 3)) == (Fraction(2), Fraction(2))
        assert rec.distance_at((3, 2)) == (Fraction(4), Fraction(4))

    def test_expansion_factor_is_det3(self):
        rec = recurrence_of(figure1_loop(10, 10))
        assert rec.expansion_factor() == 3

    def test_chain_from(self):
        rec = recurrence_of(figure1_loop(30, 40))
        space = lambda p: 1 <= p[0] <= 30 and 1 <= p[1] <= 40
        chain = rec.chain_from((4, 5), space)
        assert chain[0] == (4, 5)
        assert all(space(p) for p in chain)
        # consecutive elements satisfy the recurrence
        for a, b in zip(chain, chain[1:]):
            assert rec.next_integer(a) == b

    def test_chain_from_outside_space_rejected(self):
        rec = recurrence_of(figure1_loop(10, 10))
        with pytest.raises(ValueError):
            rec.chain_from((100, 100), lambda p: 1 <= p[0] <= 10 and 1 <= p[1] <= 10)

    def test_monotone_query(self):
        rec = recurrence_of(figure1_loop(10, 10))
        assert rec.is_monotone_map((2, 3)) is True
        assert rec.is_monotone_map((1, 1)) is False  # fixed point is not forward


class TestTheorem1:
    def test_figure1_bound_formula(self):
        """The paper: the largest partition has at most 1 + log3(sqrt(N1²+N2²)) iterations."""
        rec = recurrence_of(figure1_loop(10, 10))
        diameter = math.sqrt((10 - 1) ** 2 + (10 - 1) ** 2)
        bound = theorem1_bound(rec, diameter)
        assert bound == int(math.floor(math.log(diameter, 3))) + 1

    def test_example2_alpha_is_2(self):
        rec = recurrence_of(example2_loop(12))
        assert rec.expansion_factor() == 2

    def test_bound_none_when_alpha_le_1(self):
        rec = AffineRecurrence(RationalMatrix.identity(2), (Fraction(1), Fraction(0)))
        assert theorem1_bound(rec, 100.0) is None

    def test_bound_for_zero_diameter(self):
        rec = recurrence_of(figure1_loop(10, 10))
        assert theorem1_bound(rec, 0.0) == 1

    def test_singular_matrix_rejected(self):
        rec = AffineRecurrence(RationalMatrix.from_rows([[1, 2], [2, 4]]), (Fraction(0), Fraction(0)))
        with pytest.raises(ValueError):
            rec.expansion_factor()

    def test_measured_chains_respect_bound(self):
        from repro.core import recurrence_chain_partition

        for n1, n2 in [(10, 10), (25, 35), (40, 60)]:
            result = recurrence_chain_partition(figure1_loop(n1, n2))
            bound = result.chain_length_bound()
            assert bound is not None
            assert result.longest_chain() <= bound
            assert chain_length_bound_holds(
                result.recurrence,
                [c.points for c in result.chains],
                iteration_space_diameter(sorted(result.partition.space)),
            )

    def test_diameter(self):
        points = [(1, 1), (1, 10), (10, 1), (10, 10)]
        assert iteration_space_diameter(points) == pytest.approx(math.sqrt(81 + 81))
        assert iteration_space_diameter([]) == 0.0

    def test_figure2_recurrence_form(self):
        rec = recurrence_of(figure2_loop(20))
        # 2i = 21 - j  =>  j = -2i + 21
        assert rec.next_integer((6,)) == (9,)
        assert rec.next_integer((3,)) == (15,)
