"""Tests for repro.ir.normalize: stride normalization."""

import pytest

from repro.ir.builder import aref, assign, loop, program
from repro.ir.normalize import is_normalized, normalize_program


def strided_program(start, end, stride):
    body = assign("s", aref("a", "K"), [])
    return program(
        "p", loop("K", start, end, body, stride=stride), array_shapes={"a": (200,)}
    )


class TestNormalization:
    def test_already_normalized_is_identity(self):
        prog = strided_program(1, 10, 1)
        assert is_normalized(prog)
        out = normalize_program(prog)
        assert out.sequential_iterations({}) == prog.sequential_iterations({})

    def test_positive_stride(self):
        prog = strided_program(2, 11, 3)  # K = 2, 5, 8, 11
        out = normalize_program(prog)
        assert is_normalized(out)
        # The normalized loop visits 4 iterations whose subscript values are the
        # original K values.
        seq = out.sequential_iterations({})
        assert len(seq) == 4
        ctx = out.context_of("s")
        touched = [ctx.statement.writes[0].evaluate(dict(zip(ctx.index_names, it)))[0]
                   for _, it in seq]
        assert touched == [2, 5, 8, 11]

    def test_negative_stride(self):
        prog = strided_program(10, 0, -1)  # K = 10, 9, ..., 0
        out = normalize_program(prog)
        assert is_normalized(out)
        seq = out.sequential_iterations({})
        ctx = out.context_of("s")
        touched = [ctx.statement.writes[0].evaluate(dict(zip(ctx.index_names, it)))[0]
                   for _, it in seq]
        assert touched == list(range(10, -1, -1))

    def test_negative_stride_subscript_order_preserved(self):
        # original and normalized programs touch the same addresses in the same order
        prog = strided_program(9, 1, -2)  # 9, 7, 5, 3, 1
        ctx = prog.context_of("s")
        original = [
            ctx.statement.writes[0].evaluate(dict(zip(ctx.index_names, it)))[0]
            for _, it in prog.sequential_iterations({})
        ]
        out = normalize_program(prog)
        ctx2 = out.context_of("s")
        normalized = [
            ctx2.statement.writes[0].evaluate(dict(zip(ctx2.index_names, it)))[0]
            for _, it in out.sequential_iterations({})
        ]
        assert original == normalized == [9, 7, 5, 3, 1]

    def test_zero_stride_rejected(self):
        prog = strided_program(1, 5, 0)
        with pytest.raises(ValueError):
            normalize_program(prog)

    def test_empty_range(self):
        prog = strided_program(5, 1, 2)  # no iterations
        out = normalize_program(prog)
        assert out.sequential_iterations({}) == []

    def test_nested_substitution(self):
        inner = assign("s", aref("a", "K+J"), [])
        prog = program(
            "p",
            loop("K", 10, 2, loop("J", 1, 2, inner), stride=-2),
            array_shapes={"a": (30,)},
        )
        out = normalize_program(prog)
        assert is_normalized(out)
        seq = out.sequential_iterations({})
        assert len(seq) == 10  # 5 K values x 2 J values
        ctx = out.context_of("s")
        addresses = [
            ctx.statement.writes[0].evaluate(dict(zip(ctx.index_names, it)))[0]
            for _, it in seq
        ]
        expected = [k + j for k in range(10, 1, -2) for j in (1, 2)]
        assert addresses == expected

    def test_symbolic_nonunit_stride_rejected(self):
        body = assign("s", aref("a", "K"), [])
        prog = program(
            "p", loop("K", 1, "N", body, stride=2), parameters=["N"], array_shapes={"a": (10,)}
        )
        with pytest.raises(ValueError):
            normalize_program(prog)
