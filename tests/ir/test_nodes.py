"""Tests for repro.ir.nodes: array references, statements, loops."""

from fractions import Fraction

import pytest

from repro.ir.builder import E, aref, assign, loop
from repro.ir.nodes import ArrayRef, Loop, Statement


class TestArrayRef:
    def test_coefficient_matrix_figure1_write(self):
        ref = aref("a", "3*I1+1", "2*I1+I2-1")
        A, a = ref.coefficient_matrix(["I1", "I2"])
        assert A == [[Fraction(3), Fraction(2)], [Fraction(0), Fraction(1)]]
        assert a == [Fraction(1), Fraction(-1)]

    def test_coefficient_matrix_figure1_read(self):
        ref = aref("a", "I1+3", "I2+1")
        B, b = ref.coefficient_matrix(["I1", "I2"])
        assert B == [[Fraction(1), Fraction(0)], [Fraction(0), Fraction(1)]]
        assert b == [Fraction(3), Fraction(1)]

    def test_coefficient_matrix_rejects_foreign_symbols(self):
        ref = aref("a", "I1+N")
        with pytest.raises(ValueError):
            ref.coefficient_matrix(["I1"])

    def test_evaluate(self):
        ref = aref("a", "3*I1+1", "2*I1+I2-1")
        assert ref.evaluate({"I1": 2, "I2": 5}) == (7, 8)

    def test_rank_and_variables(self):
        ref = aref("a", "I+J", "K")
        assert ref.rank == 2
        assert ref.variables() == ("I", "J", "K")

    def test_make_coerces(self):
        ref = ArrayRef.make("a", ["I", 3])
        assert str(ref) == "a(I, 3)"


class TestStatement:
    def test_assign_factory(self):
        s = assign("s", aref("a", "I"), [aref("a", "I+1"), aref("b", "I")])
        assert s.label == "s"
        assert len(s.writes) == 1 and len(s.reads) == 2
        assert s.arrays() == ("a", "b")
        assert len(s.references()) == 3

    def test_equality_ignores_semantics(self):
        fn = lambda arrays, env, reads: 1
        s1 = Statement("s", (aref("a", "I"),), (), fn)
        s2 = Statement("s", (aref("a", "I"),), (), None)
        assert s1 == s2


class TestLoop:
    def test_single_bounds(self):
        l = loop("I", 1, "N")
        assert l.single_lower == E(1)
        assert l.single_upper == E("N")
        assert l.is_normalized()

    def test_multi_bounds_max_min(self):
        l = loop("I", ["-4", "-J"], [-1, "K"])
        assert len(l.lower) == 2 and len(l.upper) == 2
        with pytest.raises(ValueError):
            _ = l.single_lower
        assert l.evaluate_bounds({"J": 2, "K": 5}) == (-2, -1)
        assert l.evaluate_bounds({"J": 10, "K": -3}) == (-4, -3)

    def test_evaluate_bounds_single(self):
        l = loop("I", 1, "N")
        assert l.evaluate_bounds({"N": 7}) == (1, 7)

    def test_statements_and_inner_loops(self):
        inner = loop("J", 1, 3, assign("s", aref("a", "J")))
        outer = loop("I", 1, 2, inner, assign("t", aref("b", "I")))
        assert [s.label for s in outer.statements()] == ["s", "t"]
        assert [l.index for l in outer.inner_loops()] == ["J"]

    def test_str_rendering(self):
        assert str(loop("I", 1, "N")) == "DO I = 1, N"
        assert "MAX" in str(loop("I", [1, "J"], "N"))
        assert "MIN" in str(loop("I", 1, ["N", "M"]))
        assert str(loop("I", 10, 1, stride=-1)).endswith(", -1")

    def test_empty_bound_tuple_rejected(self):
        with pytest.raises(ValueError):
            Loop.make("I", [], 5)
