"""Tests for repro.ir.builder: the affine parser and the construction helpers."""

from fractions import Fraction

import pytest

from repro.ir.builder import E, aref, assign, loop, parse_affine, program
from repro.isl.affine import AffineExpr, var


class TestParser:
    def test_simple_terms(self):
        assert parse_affine("3") == AffineExpr.constant_expr(3)
        assert parse_affine("I") == var("I")
        assert parse_affine("-I") == -var("I")
        assert parse_affine("+I") == var("I")

    def test_linear_combinations(self):
        assert parse_affine("3*I1+1") == var("I1") * 3 + 1
        assert parse_affine("2*I1+I2-1") == var("I1") * 2 + var("I2") - 1
        assert parse_affine("21-I") == 21 - var("I")
        assert parse_affine("I*2") == var("I") * 2

    def test_parentheses(self):
        assert parse_affine("2*(I+3)") == var("I") * 2 + 6
        assert parse_affine("-(I-J)") == var("J") - var("I")

    def test_whitespace(self):
        assert parse_affine(" 3 * I + 2 ") == var("I") * 3 + 2

    def test_passthrough(self):
        assert parse_affine(5) == AffineExpr.constant_expr(5)
        assert parse_affine(Fraction(1, 2)).constant == Fraction(1, 2)
        e = var("I") + 1
        assert parse_affine(e) is e

    def test_nonlinear_rejected(self):
        with pytest.raises(ValueError):
            parse_affine("I*J")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_affine("I )")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ValueError):
            parse_affine("(I+1")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_affine("")

    def test_E_alias(self):
        assert E("I+1") == var("I") + 1


class TestBuilders:
    def test_aref_parses_strings(self):
        ref = aref("a", "2*I", "J+1")
        assert ref.array == "a"
        assert ref.subscripts[0] == var("I") * 2

    def test_program_builder(self):
        body = assign("s", aref("a", "I"), [aref("a", "I+1")])
        prog = program(
            "p", loop("I", 1, "N", body), parameters=["N"], array_shapes={"a": (50,)}
        )
        assert prog.name == "p"
        assert prog.parameters == ("N",)
        assert prog.array_shapes["a"] == (50,)
        assert [s.label for s in prog.statements()] == ["s"]

    def test_loop_list_bounds(self):
        l = loop("I", [1, "J"], ["N", "M"])
        assert len(l.lower) == 2 and len(l.upper) == 2
