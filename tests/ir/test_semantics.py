"""Tests for repro.ir.semantics: the executable statement semantics."""

from repro.ir.semantics import order_sensitive_semantics, sum_semantics


class TestOrderSensitiveSemantics:
    def test_deterministic(self):
        a = order_sensitive_semantics({}, {"i": 1, "j": 2}, [5, 7])
        b = order_sensitive_semantics({}, {"i": 1, "j": 2}, [5, 7])
        assert a == b

    def test_depends_on_read_order(self):
        a = order_sensitive_semantics({}, {"i": 1}, [5, 7])
        b = order_sensitive_semantics({}, {"i": 1}, [7, 5])
        assert a != b

    def test_depends_on_read_values(self):
        a = order_sensitive_semantics({}, {"i": 1}, [5])
        b = order_sensitive_semantics({}, {"i": 1}, [6])
        assert a != b

    def test_depends_on_iteration(self):
        a = order_sensitive_semantics({}, {"i": 1, "j": 2}, [5])
        b = order_sensitive_semantics({}, {"i": 2, "j": 1}, [5])
        assert a != b

    def test_chaining_is_not_commutative(self):
        # applying updates in different orders produces different results,
        # which is what lets the validator catch ordering bugs
        v1 = order_sensitive_semantics({}, {"i": 1}, [10])
        v2 = order_sensitive_semantics({}, {"i": 2}, [v1])
        w1 = order_sensitive_semantics({}, {"i": 2}, [10])
        w2 = order_sensitive_semantics({}, {"i": 1}, [w1])
        assert v2 != w2

    def test_bounded(self):
        value = order_sensitive_semantics({}, {"i": 10**6}, [2**40, 2**41])
        assert 0 <= value < 2_147_483_647

    def test_integer_result(self):
        assert isinstance(order_sensitive_semantics({}, {}, [1.0]), int)


class TestSumSemantics:
    def test_sum_plus_one(self):
        assert sum_semantics({}, {}, [1, 2, 3]) == 7
        assert sum_semantics({}, {}, []) == 1
