"""Tests for repro.ir.validate: static well-formedness checking."""

import pytest

from repro.ir.builder import aref, assign, loop, program
from repro.ir.validate import check_program, validate_program
from repro.workloads.examples import PAPER_EXAMPLES


class TestValidation:
    def test_paper_examples_are_well_formed(self):
        for name, factory in PAPER_EXAMPLES.items():
            if name == "cholesky":
                prog = factory(nmat=2, m=2, n=4, nrhs=1)
            elif name in ("figure1",):
                prog = factory(6, 6)
            elif name in ("example2", "example3"):
                prog = factory(6)
            else:
                prog = factory()
            assert validate_program(prog) == [], f"{name} should validate cleanly"

    def test_duplicate_labels(self):
        prog = program(
            "p",
            loop("I", 1, 3, assign("s", aref("a", "I")), assign("s", aref("a", "I"))),
            array_shapes={"a": (10,)},
        )
        errors = validate_program(prog)
        assert any("duplicate" in e.message for e in errors)

    def test_unknown_symbol_in_subscript(self):
        prog = program(
            "p", loop("I", 1, 3, assign("s", aref("a", "I+M"))), array_shapes={"a": (10,)}
        )
        errors = validate_program(prog)
        assert any("subscript" in e.message for e in errors)

    def test_parameter_in_subscript_allowed(self):
        prog = program(
            "p",
            loop("I", 1, 3, assign("s", aref("a", "I+M"))),
            parameters=["M"],
            array_shapes={"a": (10,)},
        )
        assert validate_program(prog) == []

    def test_bound_with_inner_symbol(self):
        prog = program(
            "p",
            loop("I", 1, "J", assign("s", aref("a", "I"))),
            array_shapes={"a": (10,)},
        )
        errors = validate_program(prog)
        assert any("bound" in e.message for e in errors)

    def test_reused_loop_index(self):
        prog = program(
            "p",
            loop("I", 1, 3, loop("I", 1, 2, assign("s", aref("a", "I")))),
            array_shapes={"a": (10,)},
        )
        errors = validate_program(prog)
        assert any("re-uses" in e.message for e in errors)

    def test_zero_stride(self):
        prog = program(
            "p",
            loop("I", 1, 3, assign("s", aref("a", "I")), stride=0),
            array_shapes={"a": (10,)},
        )
        errors = validate_program(prog)
        assert any("stride" in e.message for e in errors)

    def test_rank_mismatch_against_declared_shape(self):
        prog = program(
            "p",
            loop("I", 1, 3, assign("s", aref("a", "I", "I"))),
            array_shapes={"a": (10,)},
        )
        errors = validate_program(prog)
        assert any("dimensions" in e.message for e in errors)

    def test_statement_without_write(self):
        from repro.ir.nodes import Statement

        prog = program(
            "p", loop("I", 1, 3, Statement("s", (), (aref("a", "I"),))), array_shapes={"a": (10,)}
        )
        errors = validate_program(prog)
        assert any("write" in e.message for e in errors)

    def test_check_program_raises_with_details(self):
        prog = program(
            "p", loop("I", 1, 3, assign("s", aref("a", "I+M"))), array_shapes={"a": (10,)}
        )
        with pytest.raises(ValueError) as exc:
            check_program(prog)
        assert "s" in str(exc.value)

    def test_error_str(self):
        prog = program(
            "p", loop("I", 1, 3, assign("s", aref("a", "I+M"))), array_shapes={"a": (10,)}
        )
        err = validate_program(prog)[0]
        assert "statement s" in str(err)
