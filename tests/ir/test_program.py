"""Tests for repro.ir.program: traversal, iteration spaces, sequential order."""

import pytest

from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import example3_loop, figure1_loop


def perfect_2d(n1=4, n2=3):
    body = assign("s", aref("a", "I1", "I2"), [aref("a", "I1", "I2")])
    return program(
        "p", loop("I1", 1, n1, loop("I2", 1, n2, body)), array_shapes={"a": (10, 10)}
    )


def imperfect():
    s1 = assign("s1", aref("a", "I"), [])
    s2 = assign("s2", aref("b", "I", "J"), [])
    return program(
        "q",
        loop("I", 1, 3, s1, loop("J", 1, 2, s2)),
        array_shapes={"a": (10,), "b": (10, 10)},
    )


class TestTraversal:
    def test_statement_contexts(self):
        prog = imperfect()
        contexts = prog.statement_contexts()
        assert [c.statement.label for c in contexts] == ["s1", "s2"]
        assert contexts[0].index_names == ("I",)
        assert contexts[1].index_names == ("I", "J")
        assert contexts[0].depth == 1 and contexts[1].depth == 2

    def test_positions_are_distinct(self):
        prog = imperfect()
        positions = [c.position for c in prog.statement_contexts()]
        assert len(set(positions)) == len(positions)

    def test_context_of(self):
        prog = imperfect()
        assert prog.context_of("s2").statement.label == "s2"
        with pytest.raises(KeyError):
            prog.context_of("missing")

    def test_loops_and_arrays(self):
        prog = imperfect()
        assert [l.index for l in prog.loops()] == ["I", "J"]
        assert prog.arrays() == ("a", "b")


class TestShapeQueries:
    def test_perfect_nest_detection(self):
        assert perfect_2d().is_perfect_nest()
        assert not imperfect().is_perfect_nest()
        assert figure1_loop(5, 5).is_perfect_nest()
        assert not example3_loop(5).is_perfect_nest()

    def test_perfect_nest_loops(self):
        assert [l.index for l in perfect_2d().perfect_nest_loops()] == ["I1", "I2"]
        with pytest.raises(ValueError):
            imperfect().perfect_nest_loops()

    def test_index_names(self):
        assert perfect_2d().index_names() == ("I1", "I2")


class TestIterationSpace:
    def test_box_space(self):
        space = perfect_2d(4, 3).iteration_space()
        assert space.contains((1, 1)) and space.contains((4, 3))
        assert not space.contains((5, 1)) and not space.contains((0, 1))

    def test_parametric_space(self):
        prog = figure1_loop()
        space = prog.iteration_space()
        assert space.parameters == ("N1", "N2")
        assert space.contains((3, 3), params={"N1": 5, "N2": 5})
        bound = prog.iteration_space_bound({"N1": 2, "N2": 2})
        assert not bound.contains((3, 3))

    def test_statement_domain_triangular(self):
        prog = example3_loop(6)
        ctx = prog.context_of("s1")
        domain = ctx.domain()
        assert domain.contains((3, 2, 2))
        assert not domain.contains((3, 2, 1))  # K >= J violated
        assert not domain.contains((3, 4, 4))  # J <= I violated


class TestSequentialOrder:
    def test_rectangular_order(self):
        prog = perfect_2d(2, 2)
        seq = prog.sequential_iterations({})
        assert seq == [
            ("s", (1, 1)),
            ("s", (1, 2)),
            ("s", (2, 1)),
            ("s", (2, 2)),
        ]

    def test_imperfect_order(self):
        prog = imperfect()
        seq = prog.sequential_iterations({})
        assert seq[:4] == [
            ("s1", (1,)),
            ("s2", (1, 1)),
            ("s2", (1, 2)),
            ("s1", (2,)),
        ]

    def test_triangular_counts(self):
        prog = example3_loop(5)
        seq = prog.sequential_iterations({})
        s1_count = sum(1 for label, _ in seq if label == "s1")
        s2_count = sum(1 for label, _ in seq if label == "s2")
        # s1: sum over I of sum over J<=I of (I-J+1); s2: sum over I of I
        assert s2_count == 15
        assert s1_count == sum(
            (i - j + 1) for i in range(1, 6) for j in range(1, i + 1)
        )

    def test_parameters_required(self):
        prog = figure1_loop()
        with pytest.raises(KeyError):
            prog.sequential_iterations({})

    def test_reference_pairs_include_write_read(self):
        prog = figure1_loop(4, 4)
        pairs = prog.reference_pairs()
        # single statement, one write and one read to 'a': write-read and write-write(self excluded)
        arrays = {(r1.array, r2.array) for _, r1, _, r2 in pairs}
        assert arrays == {("a", "a")}
        assert len(pairs) >= 1
