"""Tests for repro.serving: admission queue semantics and the plan server's
lifecycle — warm caches, pool reuse, drain-on-shutdown, error isolation.

Process-backend assertions skip gracefully where POSIX shared memory is
unavailable; everything else runs on the serial backend so the suite stays
fast in tier-1.
"""

import glob
import threading

import numpy as np
import pytest

from repro.core.strategy import PlanCache
from repro.runtime import execute_sequential, make_store
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import (
    AdmissionQueue,
    PlanRequest,
    PlanServer,
    ServerClosed,
)
from repro.workloads.examples import example3_loop, figure1_loop

needs_process = pytest.mark.skipif(
    process_unavailable_reason() is not None,
    reason=f"process backend unavailable: {process_unavailable_reason()}",
)


def _dev_shm():
    return set(glob.glob("/dev/shm/psm_*"))


class TestAdmissionQueue:
    def test_fifo_and_batch_bound(self):
        q = AdmissionQueue(max_batch=3)
        reqs = [PlanRequest(program=figure1_loop(4, 4)) for _ in range(5)]
        tickets = [q.submit(r) for r in reqs]
        first = q.next_batch(timeout=0)
        second = q.next_batch(timeout=0)
        assert [t.request.request_id for t in first] == [
            r.request_id for r in reqs[:3]
        ]
        assert [t.request.request_id for t in second] == [
            r.request_id for r in reqs[3:]
        ]
        assert tickets[0] is first[0]

    def test_submit_after_close_raises(self):
        q = AdmissionQueue()
        q.close()
        with pytest.raises(ServerClosed):
            q.submit(PlanRequest(program=figure1_loop(4, 4)))

    def test_close_leaves_pending_for_drain(self):
        q = AdmissionQueue(max_batch=8)
        q.submit(PlanRequest(program=figure1_loop(4, 4)))
        q.close()
        assert len(q.next_batch(timeout=0)) == 1  # still drainable
        assert q.next_batch(timeout=0) == []  # drained-and-closed signal

    def test_fail_pending_completes_tickets(self):
        q = AdmissionQueue()
        t = q.submit(PlanRequest(program=figure1_loop(4, 4)))
        assert q.fail_pending() == 1
        with pytest.raises(ServerClosed):
            t.result(timeout=1)

    def test_max_batch_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_batch=0)


class TestPlanServerLifecycle:
    def test_submit_before_start_raises(self):
        srv = PlanServer()
        with pytest.raises(ServerClosed):
            srv.submit(PlanRequest(program=figure1_loop(4, 4)))

    def test_context_manager_serves_and_stops(self):
        prog = figure1_loop(8, 8)
        ref = execute_sequential(prog, {})
        with PlanServer() as srv:
            resp = srv.request(prog)
            assert resp.backend == "serial"
            for name in ref:
                assert np.array_equal(ref[name], resp.result.store[name])
        assert not srv.running
        with pytest.raises(ServerClosed):
            srv.submit(PlanRequest(program=prog))

    def test_stop_idempotent_and_drains_pending(self):
        prog = figure1_loop(8, 8)
        srv = PlanServer().start()
        tickets = [srv.submit(PlanRequest(program=prog)) for _ in range(6)]
        srv.stop(drain=True)
        srv.stop()  # second stop is harmless
        for t in tickets:
            assert t.result(timeout=5).result.store is not None

    def test_plan_cache_warms_across_requests(self):
        prog = example3_loop(8)
        with PlanServer() as srv:
            first = srv.request(prog)
            second = srv.request(prog)
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        assert second.strategy == first.strategy
        assert second.explain == first.explain
        assert srv.stats()["plan_cache"]["hits"] >= 1

    def test_shared_plan_cache_instance(self):
        cache = PlanCache()
        prog = figure1_loop(6, 6)
        with PlanServer(plan_cache=cache) as srv:
            srv.request(prog)
        assert cache.stats()["misses"] >= 1

    def test_error_propagates_and_server_survives(self):
        """A failing request reaches its own client; the server keeps
        serving the next one."""
        prog = figure1_loop(6, 6)
        with PlanServer() as srv:
            with pytest.raises(KeyError, match="unknown backend"):
                srv.request(prog, exec_config=ExecConfig(backend="gpu"))
            ok = srv.request(prog)
            assert ok.result.store is not None
            stats = srv.stats()
        assert stats["requests_failed"] == 1
        assert stats["requests_served"] == 1

    def test_client_store_round_trip(self):
        """A request carrying its own arrays gets them mutated in place."""
        prog = example3_loop(6)
        init = make_store(prog, fill="random", seed=7)
        ref = execute_sequential(
            prog, {}, store={k: v.copy() for k, v in init.items()}
        )
        mine = {k: v.copy() for k, v in init.items()}
        with PlanServer() as srv:
            resp = srv.request(prog, store=mine)
        for name in ref:
            assert np.array_equal(ref[name], mine[name])
        assert resp.result.store is mine


@needs_process
class TestPlanServerPools:
    def test_pool_reused_across_process_requests(self):
        prog = example3_loop(8)
        ref = execute_sequential(prog, {})
        before = _dev_shm()
        cfg = ExecConfig(backend="process", workers=2)
        with PlanServer(default_exec=cfg) as srv:
            responses = [srv.request(prog) for _ in range(3)]
            stats = srv.stats()
        assert [r.pool_reused for r in responses] == [False, True, True]
        assert all(r.result.meta.get("pool") == "injected" for r in responses)
        for r in responses:
            for name in ref:
                assert np.array_equal(ref[name], r.result.store[name])
        assert stats["pools"] == {"size": 1, "created": 1, "reused": 2, "evicted": 0}
        assert _dev_shm() == before  # clean shutdown leaves no segments

    def test_distinct_programs_get_distinct_pools(self):
        cfg = ExecConfig(backend="process", workers=2)
        before = _dev_shm()
        with PlanServer(default_exec=cfg, max_pools=2) as srv:
            srv.request(example3_loop(8))
            srv.request(figure1_loop(8, 8))
            stats = srv.stats()
        assert stats["pools"]["created"] == 2
        assert _dev_shm() == before

    def test_pool_lru_evicts_and_shuts_down(self):
        cfg = ExecConfig(backend="process", workers=2)
        before = _dev_shm()
        with PlanServer(default_exec=cfg, max_pools=1) as srv:
            srv.request(example3_loop(8))
            srv.request(figure1_loop(8, 8))  # evicts the first pool
            stats = srv.stats()
        assert stats["pools"]["created"] == 2
        assert stats["pools"]["evicted"] == 1
        assert stats["pools"]["size"] == 1
        assert _dev_shm() == before


class TestConcurrentClients:
    def test_many_threads_many_requests(self):
        """N client threads × M requests against one server: every response
        validates against the sequential reference."""
        progs = [figure1_loop(8, 8), example3_loop(8)]
        refs = [execute_sequential(p, {}) for p in progs]
        errors = []

        with PlanServer(max_batch=4) as srv:

            def client(worker_id):
                try:
                    for i in range(5):
                        prog = progs[(worker_id + i) % len(progs)]
                        ref = refs[(worker_id + i) % len(progs)]
                        resp = srv.request(prog, timeout=60)
                        assert 1 <= resp.batch_size <= 4
                        for name in ref:
                            assert np.array_equal(
                                ref[name], resp.result.store[name]
                            )
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = srv.stats()

        assert errors == []
        assert stats["requests_served"] == 20
        assert stats["plan_cache"]["hits"] >= 18  # 2 misses, everything else warm
