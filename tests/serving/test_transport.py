"""TCP transport differential + back-pressure + shutdown tests.

The transport must be invisible: a result served over TCP is bit-identical
to the in-process :class:`PlanServer` answer and to ``execute_sequential``
for every backend, over Hypothesis-generated programs and curated
workloads.  Saturation must be observable (``ServerBusy`` with a positive
retry hint on the k+1-th submission against ``max_pending=k``) and
survivable (a retrying client completes everything, nothing lost or
duplicated).  Shutdown must leave no hung threads and no ``/dev/shm``
segments even while clients hold open sockets.
"""

import glob
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.strategy import PlanConfig, plan
from repro.runtime import execute, execute_sequential, make_store
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import PlanRequest, PlanServer, ServerBusy
from repro.serving.transport import (
    RemoteServingError,
    TransportClient,
    TransportServer,
)
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
)
from strategies import loop_programs

needs_process = pytest.mark.skipif(
    process_unavailable_reason() is not None,
    reason=f"process backend unavailable: {process_unavailable_reason()}",
)

#: Same footing as tests/serving/test_serving_differential.py: the dataflow
#: strategy is pinned valid on generated programs, so what is under test
#: here is the *wire*, not the planner.
DATAFLOW = PlanConfig(engine="vector", strategies=("dataflow",))


def _dev_shm():
    return set(glob.glob("/dev/shm/psm_*"))


def _assert_tcp_matches_all_paths(tcp_client, srv, prog, backend, workers=2):
    """TCP-served ≡ in-process-served ≡ direct execute ≡ execute_sequential."""
    cfg = ExecConfig(backend=backend, workers=workers)
    ref = execute_sequential(prog, {})
    p = plan(prog, config=DATAFLOW, cache=False)
    direct = execute(prog, p.schedule, {}, config=cfg)
    local = srv.request(prog, config=DATAFLOW, exec_config=cfg, timeout=120)
    remote = tcp_client.request(prog, config=DATAFLOW, exec_config=cfg, timeout=120)
    for name in ref:
        assert np.array_equal(ref[name], remote.result.store[name]), (
            f"TCP {backend} diverged from sequential on {name!r}"
        )
        assert np.array_equal(direct.store[name], remote.result.store[name]), (
            f"TCP {backend} diverged from direct execute on {name!r}"
        )
        assert np.array_equal(
            local.result.store[name], remote.result.store[name]
        ), f"TCP {backend} diverged from in-process serving on {name!r}"


class TestWireDifferential:
    """One shared server/client per backend class — Hypothesis examples ride
    warm connections, which also exercises response demultiplexing."""

    @pytest.fixture(scope="class")
    def stack(self):
        with TransportServer(max_pending=64) as ts:
            host, port = ts.address
            with TransportClient(host, port, rng_seed=0) as client:
                yield client, ts.plan_server

    @settings(max_examples=50,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(prog=loop_programs())
    def test_serial_tcp_differential(self, stack, prog):
        client, srv = stack
        _assert_tcp_matches_all_paths(client, srv, prog, "serial")

    @settings(max_examples=25,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(prog=loop_programs())
    def test_threaded_tcp_differential(self, stack, prog):
        client, srv = stack
        _assert_tcp_matches_all_paths(client, srv, prog, "threaded")

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(prog=loop_programs())
    def test_compiled_tcp_differential(self, stack, prog):
        client, srv = stack
        _assert_tcp_matches_all_paths(client, srv, prog, "compiled")

    @needs_process
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(prog=loop_programs())
    def test_process_tcp_differential(self, stack, prog):
        client, srv = stack
        _assert_tcp_matches_all_paths(client, srv, prog, "process")

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: figure1_loop(10, 10),
            lambda: example2_loop(12),
            lambda: example3_loop(12),
            lambda: cholesky_loop(nmat=1, m=2, n=4, nrhs=1),
        ],
        ids=["fig1", "ex2", "ex3", "cholesky"],
    )
    def test_curated_default_plan_over_tcp(self, stack, factory):
        """With the *default* planning chain (whatever strategy wins), the
        TCP answer matches sequential execution and names the same strategy
        the in-process server picks."""
        client, srv = stack
        prog = factory()
        ref = execute_sequential(prog, {})
        local = srv.request(prog, timeout=120)
        remote = client.request(prog, timeout=120)
        assert remote.strategy == local.strategy
        assert remote.scheme == local.scheme
        for name in ref:
            assert np.array_equal(ref[name], remote.result.store[name])

    def test_client_store_written_in_place(self, stack):
        client, _ = stack
        prog = figure1_loop(8, 8)
        store = make_store(prog, fill="random", seed=11)
        ref = execute_sequential(
            prog, {}, store={k: v.copy() for k, v in store.items()}
        )
        resp = client.request(prog, config=DATAFLOW, store=store, timeout=120)
        for name in ref:
            assert resp.result.store[name] is store[name]
            assert np.array_equal(ref[name], store[name])

    def test_remote_error_propagates_with_type(self, stack):
        client, _ = stack
        bad = figure1_loop(6, 6)
        with pytest.raises(RemoteServingError, match="unknown backend"):
            client.request(
                bad, exec_config=ExecConfig(backend="no-such-backend"), timeout=60
            )


class _GatedServer(PlanServer):
    """A deliberately slow server: request handling parks on ``gate``."""

    def __init__(self, gate: threading.Event, **kwargs):
        super().__init__(**kwargs)
        self.gate = gate

    def _handle(self, req, batch_size):
        self.gate.wait(timeout=30)
        return super()._handle(req, batch_size)


class TestBackPressure:
    def test_saturation_busy_then_retry_completes_everything(self):
        """The acceptance scenario: slow pool, ``max_pending=k`` — the
        k+1-th wire submission is answered ``ServerBusy`` with a positive
        ``retry_after_ms``, and a retrying client still completes every
        request with zero lost or duplicated responses."""
        k = 2
        gate = threading.Event()
        srv = _GatedServer(gate, max_batch=1, max_pending=k)
        prog = figure1_loop(8, 8)
        ref = execute_sequential(prog, {})
        with TransportServer(plan_server=srv) as ts:
            host, port = ts.address
            # -- phase 1: observe the raw ServerBusy (no retries) ----------
            with TransportClient(
                host, port, max_retries=0, rng_seed=1
            ) as probe:
                inflight = []
                # one request occupies the serving thread (parked on the
                # gate), k more fill the queue to capacity
                for _ in range(k + 1):
                    inflight.append(
                        probe.submit(_plain_request(prog))
                    )
                    time.sleep(0.15)  # let the first one reach _handle
                overflow = probe.submit(_plain_request(prog))
                with pytest.raises(ServerBusy) as exc_info:
                    overflow.result(timeout=10)
                busy = exc_info.value
                assert busy.retry_after_ms > 0
                assert busy.capacity == k and busy.depth == k
                gate.set()  # release the pool
                seen = {t.result(timeout=60).request_id for t in inflight}
                assert len(seen) == k + 1  # nothing lost, nothing duplicated
            # -- phase 2: retrying clients ride the busy signal ------------
            gate.clear()
            results = []
            errors = []

            def client_thread(seed):
                try:
                    with TransportClient(
                        host, port, max_retries=60, rng_seed=seed,
                        base_backoff_s=0.01, max_backoff_s=0.2,
                    ) as c:
                        results.append(c.request(prog, timeout=120))
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(s,), daemon=True)
                for s in range(8)
            ]
            for t in threads:
                t.start()
            time.sleep(0.3)
            gate.set()
            for t in threads:
                t.join(120)
            assert not errors, errors
            assert len(results) == 8
            assert len({r.request_id for r in results}) == 8
            for r in results:
                for name in ref:
                    assert np.array_equal(ref[name], r.result.store[name])
            stats = ts.stats()["server"]["queue"]
            assert stats["rejected"] > 0  # back-pressure actually fired
            assert stats["high_water"] <= k

    def test_retry_exhaustion_surfaces_server_busy(self):
        gate = threading.Event()
        srv = _GatedServer(gate, max_batch=1, max_pending=1)
        prog = figure1_loop(6, 6)
        try:
            with TransportServer(plan_server=srv) as ts:
                host, port = ts.address
                with TransportClient(
                    host, port, max_retries=2, rng_seed=2,
                    base_backoff_s=0.01, max_backoff_s=0.05,
                ) as c:
                    filler = [c.submit(_plain_request(prog)) for _ in range(2)]
                    time.sleep(0.15)
                    doomed = c.submit(_plain_request(prog))
                    with pytest.raises(ServerBusy):
                        doomed.result(timeout=30)
                    assert doomed.attempts == 3  # initial + 2 retries
                    gate.set()
                    for t in filler:
                        t.result(timeout=60)
        finally:
            gate.set()


def _plain_request(prog):
    return PlanRequest(program=prog)


class TestShutdown:
    def test_close_with_open_client_sockets(self):
        """No hung threads and clean shm when the server shuts down while
        clients still hold open connections."""
        shm_before = _dev_shm()
        baseline = {t.name for t in threading.enumerate()}
        prog = figure1_loop(8, 8)
        ts = TransportServer().start()
        host, port = ts.address
        clients = [TransportClient(host, port, rng_seed=i) for i in range(3)]
        for c in clients:
            c.request(prog, timeout=60)  # live traffic before shutdown
        ts.close(timeout=10)  # clients still hold their sockets here
        for c in clients:
            with pytest.raises((ConnectionError, OSError, RemoteServingError)):
                c.request(prog, timeout=5)
        for c in clients:
            c.close()
        deadline = time.time() + 10
        while time.time() < deadline:
            leftover = {t.name for t in threading.enumerate()} - baseline
            if not leftover:
                break
            time.sleep(0.05)
        assert not leftover, f"hung threads after shutdown: {leftover}"
        assert _dev_shm() == shm_before

    @needs_process
    def test_close_mid_request_drains_and_unlinks_shm(self):
        """In-flight process-backend requests are served during shutdown
        (close-then-drain) and every shm segment is unlinked."""
        shm_before = _dev_shm()
        prog = figure1_loop(10, 10)
        ref = execute_sequential(prog, {})
        cfg = ExecConfig(backend="process", workers=2)
        ts = TransportServer().start()
        host, port = ts.address
        client = TransportClient(host, port, rng_seed=5)
        tickets = [
            client.submit(PlanRequest(program=prog, exec_config=cfg))
            for _ in range(3)
        ]
        time.sleep(0.3)  # let the reader admit all three before we close
        closer = threading.Thread(target=lambda: ts.close(timeout=60), daemon=True)
        closer.start()
        responses = [t.result(timeout=120) for t in tickets]
        closer.join(120)
        assert not closer.is_alive()
        client.close()
        assert len({r.request_id for r in responses}) == 3
        for r in responses:
            for name in ref:
                assert np.array_equal(ref[name], r.result.store[name])
        assert _dev_shm() == shm_before

    def test_double_close_and_stats_after_close(self):
        ts = TransportServer().start()
        host, port = ts.address
        with TransportClient(host, port) as c:
            c.request(figure1_loop(4, 4), timeout=60)
        ts.close()
        ts.close()  # idempotent
        assert ts.stats()["connections_total"] == 1
