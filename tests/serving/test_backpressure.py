"""Bounded-admission semantics: saturation policies, racing, observability.

The queue's back-pressure contract (see ``repro/serving/policy.py``):

* ``max_pending`` is a hard bound — the boundary submission is admitted,
  the one past it saturates;
* ``policy="reject"`` answers saturation with a structured
  :class:`ServerBusy` carrying a positive retry hint;
* ``policy="block"`` parks the submitter until the serving loop drains room
  — and a blocked submitter must never hang: close wakes it with
  :class:`ServerClosed`, ``fail_pending`` frees room for it;
* every decision is countable via :meth:`AdmissionQueue.stats`, surfaced
  unchanged through :meth:`PlanServer.stats`.
"""

import threading
import time

import pytest

from repro.serving import (
    AdmissionQueue,
    PlanRequest,
    PlanServer,
    ServerBusy,
    ServerClosed,
)
from repro.workloads.examples import figure1_loop


def _req():
    return PlanRequest(program=figure1_loop(4, 4))


class TestBoundary:
    def test_max_pending_boundary_admits_then_rejects(self):
        q = AdmissionQueue(max_batch=4, max_pending=3, policy="reject")
        for _ in range(3):
            q.submit(_req())  # up to the bound: admitted without pushback
        with pytest.raises(ServerBusy) as exc_info:
            q.submit(_req())
        busy = exc_info.value
        assert busy.retry_after_ms > 0
        assert busy.depth == 3 and busy.capacity == 3
        # draining one batch opens room again
        assert len(q.next_batch(timeout=0.1)) == 3
        q.submit(_req())

    def test_unbounded_queue_never_rejects(self):
        q = AdmissionQueue(max_batch=2, max_pending=None, policy="reject")
        for _ in range(64):
            q.submit(_req())
        assert len(q) == 64

    def test_per_submit_policy_override(self):
        # A "block" queue still rejects a submit that asks for "reject" —
        # the wire transport's face on a shared in-process queue.
        q = AdmissionQueue(max_batch=1, max_pending=1, policy="block")
        q.submit(_req())
        with pytest.raises(ServerBusy):
            q.submit(_req(), policy="reject")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionQueue(policy="drop-newest")
        q = AdmissionQueue(max_pending=1)
        with pytest.raises(ValueError):
            q.submit(_req(), policy="shed")


class TestBlockingPolicy:
    def test_blocked_submitter_proceeds_when_room_opens(self):
        q = AdmissionQueue(max_batch=1, max_pending=1, policy="block")
        q.submit(_req())
        admitted = threading.Event()

        def submitter():
            q.submit(_req())
            admitted.set()

        t = threading.Thread(target=submitter, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # parked on the full queue
        assert len(q.next_batch(timeout=0.1)) == 1  # drains -> room
        assert admitted.wait(2.0)
        t.join(2.0)
        assert len(q) == 1

    def test_close_wakes_blocked_submitter_with_server_closed(self):
        q = AdmissionQueue(max_batch=1, max_pending=1, policy="block")
        q.submit(_req())
        outcome = []

        def submitter():
            try:
                q.submit(_req())
                outcome.append("admitted")
            except ServerClosed:
                outcome.append("closed")

        t = threading.Thread(target=submitter, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(2.0)
        assert not t.is_alive()
        assert outcome == ["closed"]

    def test_fail_pending_racing_blocked_submitter(self):
        # fail_pending *without* close frees room: the parked submitter is
        # admitted (its request was never part of the failed batch).
        q = AdmissionQueue(max_batch=1, max_pending=1, policy="block")
        first = q.submit(_req())
        outcome = []

        def submitter():
            try:
                outcome.append(("admitted", q.submit(_req())))
            except ServerClosed:
                outcome.append(("closed", None))

        t = threading.Thread(target=submitter, daemon=True)
        t.start()
        time.sleep(0.05)
        assert q.fail_pending() == 1
        t.join(2.0)
        assert not t.is_alive()
        assert outcome[0][0] == "admitted"
        assert first.done and isinstance(first.error, ServerClosed)
        # the racer's ticket is live in the queue, not failed
        assert len(q) == 1 and not outcome[0][1].done

    def test_close_then_fail_pending_is_the_no_drain_stop(self):
        # stop(drain=False) ordering: close() first, fail_pending() second —
        # the blocked submitter must come out with ServerClosed, not hang.
        q = AdmissionQueue(max_batch=1, max_pending=1, policy="block")
        q.submit(_req())
        errors = []

        def submitter():
            try:
                q.submit(_req())
            except ServerClosed as exc:
                errors.append(exc)

        t = threading.Thread(target=submitter, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        q.fail_pending()
        t.join(2.0)
        assert not t.is_alive()
        assert len(errors) == 1


class TestStats:
    def test_queue_counters(self):
        q = AdmissionQueue(max_batch=2, max_pending=2, policy="reject")
        q.submit(_req())
        q.submit(_req())
        with pytest.raises(ServerBusy):
            q.submit(_req())
        q.next_batch(timeout=0.1)
        q.submit(_req())
        stats = q.stats()
        assert stats == {
            "depth": 1,
            "capacity": 2,
            "policy": "reject",
            "high_water": 2,
            "admitted": 3,
            "rejected": 1,
            "batched": 2,
        }

    def test_plan_server_surfaces_queue_stats(self):
        with PlanServer(max_pending=8, admission_policy="block") as srv:
            srv.request(figure1_loop(4, 4), timeout=60)
            stats = srv.stats()
        queue = stats["queue"]
        assert queue["capacity"] == 8
        assert queue["policy"] == "block"
        assert queue["admitted"] == 1 and queue["batched"] == 1
        assert queue["rejected"] == 0
        assert queue["high_water"] >= 1


class TestTicketCallbacks:
    def test_done_callback_fires_on_completion_and_late_registration(self):
        q = AdmissionQueue()
        ticket = q.submit(_req())
        seen = []
        ticket.add_done_callback(lambda t: seen.append("on-complete"))
        ticket.set_exception(ServerClosed("test"))
        assert seen == ["on-complete"]
        ticket.add_done_callback(lambda t: seen.append("late"))
        assert seen == ["on-complete", "late"]
        assert isinstance(ticket.error, ServerClosed)
