"""Differential tests pinning daemon-served results to direct execution.

The serving layer must be a pure transport: for every backend the registry
exposes (``serial`` / ``threaded`` / ``process`` / ``compiled``), a result
served by :class:`~repro.serving.PlanServer` is **bit-identical** to the
one-shot ``plan()`` + ``execute()`` path and to ``execute_sequential`` —
over Hypothesis-generated programs, not just the curated examples.  The
warm paths (plan-cache hits, reused pools) must not change a single bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.core.strategy import PlanConfig, plan
from repro.runtime import execute, execute_sequential, make_store
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import PlanServer
from repro.workloads.corpus import selection_corpus
from strategies import loop_programs

needs_process = pytest.mark.skipif(
    process_unavailable_reason() is not None,
    reason=f"process backend unavailable: {process_unavailable_reason()}",
)

#: The always-applicable strategy whose schedules are pinned valid on
#: generated programs by the statement-level differential suite — the same
#: footing ``tests/runtime/test_backend_differential.py`` stands on, so the
#: property under test here is the *serving transport*, not the planner.
DATAFLOW = PlanConfig(engine="vector", strategies=("dataflow",))


def _served_matches_direct(srv, prog, backend, workers=2, params=None):
    """Serve (prog, backend) twice — cold then warm — and pin both against
    execute_sequential and the direct plan()+execute() one-shot path.

    The direct run uses the same ``ExecConfig`` (hence the same shuffle
    seed), so "bit-identical" really means identical, not just equivalent.
    """
    params = dict(params or {})
    cfg = ExecConfig(backend=backend, workers=workers)
    ref = execute_sequential(prog, params)

    p = plan(prog, params=params, config=DATAFLOW, cache=False)
    direct = execute(prog, p.schedule, params, config=cfg)

    for _ in range(2):  # second pass rides the warm plan cache (and pool)
        resp = srv.request(
            prog, params=params, config=DATAFLOW, exec_config=cfg, timeout=120
        )
        for name in ref:
            assert np.array_equal(ref[name], resp.result.store[name]), (
                f"served {backend} diverged from sequential on {name!r}"
            )
            assert np.array_equal(direct.store[name], resp.result.store[name]), (
                f"served {backend} diverged from direct execute on {name!r}"
            )


class TestServedBitIdentical:
    @given(prog=loop_programs())
    def test_serial_served(self, prog):
        with PlanServer() as srv:
            _served_matches_direct(srv, prog, "serial")

    @given(prog=loop_programs())
    def test_threaded_served(self, prog):
        with PlanServer() as srv:
            _served_matches_direct(srv, prog, "threaded")

    @given(prog=loop_programs())
    def test_compiled_served(self, prog):
        """The compiled backend (kernel or its documented serial fallback)
        serves bit-identical results through the daemon."""
        with PlanServer() as srv:
            _served_matches_direct(srv, prog, "compiled")

    @needs_process
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=loop_programs())
    def test_process_served(self, prog):
        with PlanServer() as srv:
            _served_matches_direct(srv, prog, "process")


@needs_process
def test_one_server_all_backends_on_corpus_workload():
    """One long-lived server answers for every backend on a calibrated
    corpus workload; all answers match the sequential reference and the
    warm second pass hits both the plan cache and the persistent pool."""
    entry = selection_corpus(size="small")[0]
    prog, params = entry.program, entry.params
    ref = execute_sequential(prog, dict(params))
    with PlanServer() as srv:
        for backend in ("serial", "threaded", "compiled", "process"):
            cfg = ExecConfig(backend=backend, workers=2)
            cold = srv.request(prog, params=params, exec_config=cfg, timeout=120)
            warm = srv.request(prog, params=params, exec_config=cfg, timeout=120)
            assert warm.plan_cache_hit
            if backend == "process":
                assert warm.pool_reused
                assert warm.result.meta.get("pool") == "injected"
            for name in ref:
                assert np.array_equal(ref[name], cold.result.store[name])
                assert np.array_equal(ref[name], warm.result.store[name])


@given(prog=loop_programs())
def test_default_plan_served_identical_to_direct(prog):
    """With the *default* planning chain (whatever strategy wins), the
    daemon is a pure transport: served result ≡ direct plan()+execute()
    under the same ExecConfig, bit for bit."""
    p = plan(prog, cache=False)
    direct = execute(prog, p.schedule, {}, config=ExecConfig())
    with PlanServer() as srv:
        resp = srv.request(prog, timeout=120)
    assert resp.strategy == p.strategy
    for name in direct.store:
        assert np.array_equal(direct.store[name], resp.result.store[name])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(prog=loop_programs(), fill_seed=st.integers(0, 2**16))
def test_varied_initial_stores_served(prog, fill_seed):
    """Client-supplied random initial stores round-trip through the daemon
    bit-identically to the sequential run on the same contents."""
    init = make_store(prog, fill="random", seed=fill_seed)
    ref = execute_sequential(
        prog, {}, store={k: v.copy() for k, v in init.items()}
    )
    with PlanServer() as srv:
        resp = srv.request(
            prog, config=DATAFLOW, store={k: v.copy() for k, v in init.items()}
        )
    for name in ref:
        assert np.array_equal(ref[name], resp.result.store[name])
