"""Wire-format tests: framing, marshalling round-trips, refusals, versioning.

Everything here runs on in-memory byte streams — no sockets — so the
protocol itself is pinned independently of the TCP plumbing: dtype/shape
round-trips for store arrays, IR/config marshalling equality, version and
magic checks, and the explicit refusals (callables never cross the wire).
"""

import io
import struct

import numpy as np
import pytest
from hypothesis import given

from repro.core.strategy import PlanConfig
from repro.runtime import execute_sequential, make_store
from repro.runtime.backends import ExecConfig, PhaseStats, RunResult
from repro.serving import PlanRequest, PlanResponse, PlanServer, ServerBusy
from repro.serving.transport import wire
from repro.serving.transport.wire import (
    FrameKind,
    ProtocolVersionMismatch,
    WireError,
)
from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import cholesky_loop, example3_loop, figure1_loop
from strategies import loop_programs


def _roundtrip(kind, header, payloads=()):
    buf = io.BytesIO()
    wire.write_frame(buf, kind, header, payloads)
    buf.seek(0)
    return wire.read_frame(buf)


class TestFraming:
    def test_kind_header_payload_roundtrip(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        specs, bodies = wire.array_specs({"x": arr})
        kind, header, payloads = _roundtrip(
            FrameKind.REQUEST, {"arrays": specs, "k": 1}, bodies
        )
        assert kind == FrameKind.REQUEST
        assert header["k"] == 1
        store = wire.arrays_from_payloads(header["arrays"], payloads)
        assert np.array_equal(store["x"], arr)
        assert store["x"].dtype == arr.dtype and store["x"].shape == arr.shape

    def test_bad_magic_rejected(self):
        buf = io.BytesIO(b"HTTP/1.1 200 OK\r\n\r\n")
        with pytest.raises(WireError, match="bad magic"):
            wire.read_frame(buf)

    def test_version_mismatch_raised(self):
        buf = io.BytesIO()
        wire.write_frame(buf, FrameKind.REQUEST, {"arrays": []})
        raw = bytearray(buf.getvalue())
        struct.pack_into(">H", raw, 4, wire.PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolVersionMismatch):
            wire.read_frame(io.BytesIO(bytes(raw)))

    def test_unknown_kind_rejected(self):
        buf = io.BytesIO()
        wire.write_frame(buf, FrameKind.REQUEST, {"arrays": []})
        raw = bytearray(buf.getvalue())
        raw[6] = 250  # kind byte
        with pytest.raises(WireError, match="unknown frame kind"):
            wire.read_frame(io.BytesIO(bytes(raw)))

    def test_truncated_frame_is_eof(self):
        buf = io.BytesIO()
        arr = np.ones((8, 8))
        specs, bodies = wire.array_specs({"x": arr})
        wire.write_frame(buf, FrameKind.RESPONSE, {"arrays": specs}, bodies)
        with pytest.raises(EOFError):
            wire.read_frame(io.BytesIO(buf.getvalue()[:-16]))

    def test_payload_length_mismatch_rejected(self):
        arr = np.ones(4)
        specs, _ = wire.array_specs({"x": arr})
        with pytest.raises(WireError, match="payload is"):
            wire.arrays_from_payloads(specs, [b"\x00" * 8])


class TestArrayRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(6, dtype=np.int64).reshape(2, 3),
            np.linspace(0, 1, 7, dtype=np.float32),
            np.array([[True, False], [False, True]]),
            np.zeros((3, 0, 2)),  # empty extent round-trips shape exactly
            np.asfortranarray(np.arange(12.0).reshape(3, 4)),  # F-order input
        ],
        ids=["int64-2d", "float32-1d", "bool-2d", "empty-extent", "fortran"],
    )
    def test_dtype_shape_bits_pinned(self, arr):
        specs, bodies = wire.array_specs({"a": arr})
        back = wire.arrays_from_payloads(specs, list(bodies))["a"]
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)
        assert back.flags.writeable  # executors write into served stores

    def test_float_bits_exact_not_approximate(self):
        arr = np.array([0.1, 1e-308, np.pi, -0.0, np.inf])
        specs, bodies = wire.array_specs({"a": arr})
        back = wire.arrays_from_payloads(specs, list(bodies))["a"]
        assert back.tobytes() == np.ascontiguousarray(arr).tobytes()


class TestIRMarshalling:
    @given(prog=loop_programs())
    def test_program_roundtrip_equality(self, prog):
        assert wire.program_from_dict(wire.program_to_dict(prog)) == prog

    @pytest.mark.parametrize(
        "prog",
        [
            figure1_loop(10, 10),
            example3_loop(12),
            cholesky_loop(nmat=1, m=2, n=4, nrhs=1),
        ],
        ids=["fig1", "ex3-multi-stmt", "cholesky-imperfect"],
    )
    def test_curated_programs_roundtrip(self, prog):
        back = wire.program_from_dict(wire.program_to_dict(prog))
        assert back == prog
        # and the round-tripped program *executes* identically
        ref = execute_sequential(prog, {})
        out = execute_sequential(back, {})
        assert all(np.array_equal(ref[k], out[k]) for k in ref)

    def test_fractional_coefficients_roundtrip(self):
        from fractions import Fraction

        from repro.isl.affine import AffineExpr

        expr = AffineExpr.build({"I1": Fraction(1, 2), "N": -2}, Fraction(-3, 4))
        assert wire.affine_from_dict(wire.affine_to_dict(expr)) == expr

    def test_semantics_callable_refused(self):
        prog = program(
            "with-sem",
            loop(
                "I1", 1, 4,
                assign("s1", aref("y", "I1"), [], semantics=lambda *a: 0.0),
            ),
            array_shapes={"y": (8,)},
        )
        with pytest.raises(WireError, match="semantics"):
            wire.program_to_dict(prog)

    def test_cost_model_refused(self):
        class FakeCostModel:
            pass

        cfg = ExecConfig.__new__(ExecConfig)  # bypass __post_init__ validation
        object.__setattr__(cfg, "backend", "simulated")
        object.__setattr__(cfg, "workers", 2)
        object.__setattr__(cfg, "seed", 0)
        object.__setattr__(cfg, "lock_free", True)
        object.__setattr__(cfg, "mp_context", None)
        object.__setattr__(cfg, "cost_model", FakeCostModel())
        with pytest.raises(WireError, match="cost_model"):
            wire.exec_config_to_dict(cfg)


class TestConfigMarshalling:
    @pytest.mark.parametrize(
        "cfg",
        [
            None,
            PlanConfig(),
            PlanConfig(
                engine="vector",
                strategies=("dataflow",),
                selector="fixed",
                rng_seed=None,
                exec_config=ExecConfig(backend="threaded", workers=3, seed=7),
            ),
        ],
        ids=["none", "defaults", "pinned"],
    )
    def test_plan_config_roundtrip(self, cfg):
        assert wire.plan_config_from_dict(wire.plan_config_to_dict(cfg)) == cfg

    @pytest.mark.parametrize(
        "cfg",
        [None, ExecConfig(), ExecConfig(backend="process", workers=2, mp_context="spawn")],
        ids=["none", "defaults", "process-spawn"],
    )
    def test_exec_config_roundtrip(self, cfg):
        assert wire.exec_config_from_dict(wire.exec_config_to_dict(cfg)) == cfg


class TestRequestResponseFrames:
    def test_request_roundtrip_with_store(self):
        prog = figure1_loop(6, 6)
        store = make_store(prog, fill="random", seed=3)
        req = PlanRequest(
            program=prog,
            params={},
            config=PlanConfig(strategies=("dataflow",)),
            exec_config=ExecConfig(backend="serial", seed=5),
            store=store,
        )
        header, bodies = wire.request_frame(req)
        kind, rheader, payloads = _roundtrip(FrameKind.REQUEST, header, bodies)
        back = wire.decode_request(rheader, payloads)
        assert back.request_id == req.request_id
        assert back.program == prog
        assert back.config == req.config and back.exec_config == req.exec_config
        assert set(back.store) == set(store)
        assert all(np.array_equal(back.store[k], store[k]) for k in store)

    def test_request_without_store_stays_storeless(self):
        req = PlanRequest(program=figure1_loop(4, 4))
        header, bodies = wire.request_frame(req)
        assert bodies == () and header["has_store"] is False
        _, rheader, payloads = _roundtrip(FrameKind.REQUEST, header, bodies)
        assert wire.decode_request(rheader, payloads).store is None

    def test_response_roundtrip_from_live_server(self):
        prog = example3_loop(10)
        with PlanServer() as srv:
            resp = srv.request(prog, timeout=60)
        header, bodies = wire.response_frame(resp)
        kind, rheader, payloads = _roundtrip(FrameKind.RESPONSE, header, bodies)
        back = wire.decode_response(rheader, payloads)
        assert back.request_id == resp.request_id
        assert back.strategy == resp.strategy and back.scheme == resp.scheme
        assert back.backend == resp.backend
        assert back.explain == resp.explain
        assert back.plan_cache_hit == resp.plan_cache_hit
        assert back.batch_size == resp.batch_size
        assert back.selection == resp.selection
        assert back.timings == pytest.approx(resp.timings)
        assert back.result.phase_stats == resp.result.phase_stats
        assert back.result.meta == resp.result.meta
        for name in resp.result.store:
            assert np.array_equal(back.result.store[name], resp.result.store[name])

    def test_simulated_result_without_store(self):
        result = RunResult(
            store=None,
            backend="simulated",
            workers=4,
            phase_stats=(PhaseStats("P1", 10, 10, 4, 0.001),),
            elapsed_s=0.002,
            meta={"makespan": 12.5},
        )
        resp = PlanResponse(
            request_id="r1",
            strategy="dataflow",
            scheme="dataflow",
            backend="simulated",
            result=result,
            selection=None,
            explain="",
            plan_cache_hit=False,
            pool_reused=False,
            batch_size=1,
            timings={"total_s": 0.1},
        )
        header, bodies = wire.response_frame(resp)
        assert bodies == ()
        _, rheader, payloads = _roundtrip(FrameKind.RESPONSE, header, bodies)
        assert wire.decode_response(rheader, payloads).result.store is None

    def test_non_json_meta_degrades_to_repr(self):
        result = RunResult(
            store=None,
            backend="serial",
            workers=1,
            phase_stats=(),
            elapsed_s=0.0,
            meta={"pool": object()},
        )
        resp = PlanResponse(
            request_id="r2", strategy="s", scheme="s", backend="serial",
            result=result, selection=None, explain="", plan_cache_hit=False,
            pool_reused=False, batch_size=1,
        )
        header, _ = wire.response_frame(resp)
        assert isinstance(header["result"]["meta"]["pool"], str)


class TestBusyAndErrorFrames:
    def test_busy_frame_roundtrip(self):
        busy = ServerBusy(retry_after_ms=75, depth=9, capacity=8)
        kind, header, payloads = _roundtrip(
            FrameKind.BUSY, wire.busy_frame("req-1", busy)
        )
        assert kind == FrameKind.BUSY and payloads == []
        back = ServerBusy.from_header(header)
        assert (back.retry_after_ms, back.depth, back.capacity) == (75, 9, 8)
        assert header["request_id"] == "req-1"

    def test_error_frame_carries_type_and_message(self):
        kind, header, _ = _roundtrip(
            FrameKind.ERROR, wire.error_frame("req-2", ValueError("boom"))
        )
        assert kind == FrameKind.ERROR
        assert header == {
            "request_id": "req-2",
            "error_type": "ValueError",
            "message": "boom",
        }
