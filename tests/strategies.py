"""Shared Hypothesis strategies: random small :class:`LoopProgram` s.

The differential test modules need a stream of loop programs covering the
shapes the statement-level extension (§3.3) must handle — 1–3 statements,
nesting depth ≤ 3, statements at any level (imperfect nests), rectangular
*and* triangular bounds, affine subscripts with negative coefficients — while
staying small enough that the exact analyser and both partitioning engines
run in milliseconds per example.

Design constraints baked into the generator:

* every generated program is **normalized** (unit strides, lower bound 1), so
  the §3.3 mapping property (program order == lexicographic unified order)
  holds by construction — the property test asserts it rather than assumes it;
* statement labels are ``s1, s2, ...`` in syntactic order (unique by
  construction, as the IR requires);
* arrays come from a fixed pool with fixed ranks (``x`` rank 2, ``y`` rank 1)
  and every subscript is shifted to be non-negative inside the bounds, so the
  declared shapes cover all accesses and generated schedules can be *executed*
  by the runtime validators, not just analysed.

Use :func:`loop_programs` as a strategy::

    from strategies import loop_programs

    @given(prog=loop_programs())
    def test_something(prog): ...
"""

import hypothesis.strategies as st

from repro.ir.builder import aref, assign, loop, program
from repro.ir.program import LoopProgram
from repro.isl.affine import AffineExpr

__all__ = ["loop_programs", "MAX_BOUND", "ARRAY_POOL"]

#: Largest loop bound the generator draws (keeps spaces at ≤ 4³ points/statement).
MAX_BOUND = 4

#: Array pool with fixed ranks so shapes are consistent across statements.
ARRAY_POOL = (("x", 2), ("y", 1))

#: Loop index names by nesting level (outermost first).
_INDICES = ("I1", "I2", "I3")

# Every subscript coefficient is in [-2, 2] and every index in [1, MAX_BOUND],
# so shifting by 2*MAX_BOUND per enclosing index keeps subscripts >= 0 and
# bounded by _SHAPE below.
_SHAPE = 4 * MAX_BOUND * len(_INDICES) + 8


def _subscript(draw, indices):
    """One affine subscript over the enclosing indices, shifted non-negative."""
    coeffs = {name: draw(st.integers(-2, 2)) for name in indices}
    offset = draw(st.integers(0, 3))
    shift = -sum(min(c, c * MAX_BOUND) for c in coeffs.values())
    return AffineExpr.build(
        {name: c for name, c in coeffs.items() if c}, offset + shift
    )


def _statement(draw, label, indices):
    """One assignment: a write plus 0–2 reads, arrays from the fixed pool."""
    def ref(draw):
        array, rank = draw(st.sampled_from(ARRAY_POOL))
        return aref(array, *(_subscript(draw, indices) for _ in range(rank)))

    write = ref(draw)
    reads = [ref(draw) for _ in range(draw(st.integers(0, 2)))]
    return assign(label, write, reads)


@st.composite
def loop_programs(
    draw,
    min_statements: int = 1,
    max_statements: int = 3,
    max_depth: int = 3,
) -> LoopProgram:
    """A random small loop program (possibly imperfect, possibly triangular).

    The skeleton is one loop chain of depth ``1..max_depth``; each statement
    is placed at a drawn level, either before or after the next-deeper loop
    (statements at the innermost level are simply its body).  Inner loop upper
    bounds are a constant or the enclosing index (triangular).
    """
    depth = draw(st.integers(1, max_depth))
    n_statements = draw(st.integers(min_statements, max_statements))

    # Placement per statement: (level, slot), where slot 0 = before the
    # nested loop at that level and slot 1 = after it (the innermost level
    # has no nested loop, so its statements all take slot 0).
    placements = []
    for _ in range(n_statements):
        level = draw(st.integers(1, depth))
        slot = 0 if level == depth else draw(st.integers(0, 1))
        placements.append((level, slot))

    # Labels follow syntactic (program-text) order, as the IR requires them
    # to be readable; the stable sort keeps draw order within a placement.
    labels = {}
    for rank, k in enumerate(
        sorted(range(n_statements), key=lambda k: _syntactic_key(placements[k]))
    ):
        labels[k] = f"s{rank + 1}"

    # Bounds per level: outermost constant, inner constant or triangular.
    uppers = [draw(st.integers(2, MAX_BOUND))]
    for level in range(2, depth + 1):
        if draw(st.booleans()):
            uppers.append(_INDICES[level - 2])  # triangular: 1..I_{level-1}
        else:
            uppers.append(draw(st.integers(2, MAX_BOUND)))

    statements = {
        k: _statement(draw, labels[k], _INDICES[: placements[k][0]])
        for k in range(n_statements)
    }

    def build_level(level):
        before = [
            statements[k]
            for k in range(n_statements)
            if placements[k] == (level, 0)
        ]
        after = [
            statements[k]
            for k in range(n_statements)
            if placements[k] == (level, 1)
        ]
        inner = [build_level(level + 1)] if level < depth else []
        return loop(
            _INDICES[level - 1], 1, uppers[level - 1], *(before + inner + after)
        )

    return program(
        "hypothesis-nest",
        build_level(1),
        array_shapes={
            "x": (_SHAPE, _SHAPE),
            "y": (_SHAPE,),
        },
    )


def _syntactic_key(placement):
    """Sort key giving the syntactic (program-text) order of a placement.

    Before-statements appear in increasing level order on the way *down* the
    loop chain; after-statements appear in *decreasing* level order on the way
    back up, after the whole subtree.
    """
    level, slot = placement
    if slot == 0:
        return (0, level)
    return (1, -level)
