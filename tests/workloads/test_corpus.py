"""Tests for the selection corpus (repro.workloads.corpus).

Two layers of guarantees:

* **composition corpus** (the SPECfp95-like study input) — deterministic
  generation at the published fractions (already covered in depth by
  ``tests/analysis/test_stats.py``; here only the seeding contract);
* **selection corpus** — every program of every family is a real, runnable
  workload: it plans under the default config, the plan respects every
  dependence (``Plan.validate()``), and executing the plan's schedule is
  bit-identical to ``execute_sequential`` over a randomized initial store
  (the differential idiom of the backend suite).  These are the programs the
  calibrated strategy-selection table is derived from, so they must not be
  able to rot into unexecutable shapes.
"""

import numpy as np
import pytest

from repro.core.strategy import PlanConfig, plan
from repro.runtime import execute_sequential, make_store
from repro.workloads.corpus import (
    CORPUS_SIZES,
    DEFAULT_CORPUS_SEED,
    CorpusEntry,
    build_corpus,
    corpus_families,
    family_entries,
    lu_kernel,
    selection_corpus,
    sor_kernel,
)

SMALL_CORPUS = selection_corpus(size="small")


class TestCorpusShape:
    def test_families_and_entries(self):
        families = corpus_families()
        assert len(families) >= 8
        for required in (
            "deep-rectangular", "triangular", "imperfect", "nonuniform-coupled",
            "coupled-uniform", "separable", "reversal-1d", "parametric",
            "lu", "sor",
        ):
            assert required in families
        assert {e.family for e in SMALL_CORPUS} == set(families)
        # entry names are unique corpus-wide (they key the bench rows)
        names = [e.name for e in SMALL_CORPUS]
        assert len(names) == len(set(names))

    def test_generation_is_deterministic(self):
        again = selection_corpus(size="small")
        for a, b in zip(SMALL_CORPUS, again):
            assert a.name == b.name and a.params == b.params
            assert a.program == b.program

    def test_size_presets_cover_every_family(self):
        for size, bounds in CORPUS_SIZES.items():
            assert set(bounds) == set(corpus_families()), size

    def test_unknown_family_and_size_raise(self):
        with pytest.raises(KeyError):
            family_entries("no-such-family")
        with pytest.raises(KeyError):
            selection_corpus(size="no-such-size")

    def test_parametric_entries_carry_params(self):
        entries = family_entries("parametric", n=6)
        assert entries and all(e.params == {"N": 6} for e in entries)
        assert all(e.program.parameters == ("N",) for e in entries)


class TestCorpusPrograms:
    @pytest.mark.parametrize(
        "entry", SMALL_CORPUS, ids=[e.name for e in SMALL_CORPUS]
    )
    def test_plans_validates_and_matches_sequential(self, entry):
        """Every corpus program plans, respects its dependences, and executes
        bit-identically to the sequential reference over a random store."""
        p = plan(entry.program, entry.params, cache=False)
        assert p.schedule.total_work > 0
        assert p.validate(seeds=(0,)).ok

        init = make_store(entry.program, fill="random", seed=7)
        ref = execute_sequential(
            entry.program, entry.params,
            store={k: v.copy() for k, v in init.items()},
        )
        store = p.execute(store={k: v.copy() for k, v in init.items()})
        for name in ref:
            assert np.array_equal(ref[name], store[name]), (
                f"{entry.name}: array {name!r} diverges from sequential"
            )

    @pytest.mark.parametrize(
        "entry", SMALL_CORPUS, ids=[e.name for e in SMALL_CORPUS]
    )
    def test_fixed_selector_also_plans(self, entry):
        p = plan(
            entry.program, entry.params,
            config=PlanConfig(selector="fixed"), cache=False,
        )
        assert p.schedule.total_work > 0


class TestKernels:
    def test_lu_kernel_structure(self):
        prog = lu_kernel(6)
        assert not prog.is_perfect_nest()
        labels = [ctx.statement.label for ctx in prog.statement_contexts()]
        assert labels == ["s1", "s2"]

    def test_sor_kernel_is_uniform_perfect_nest(self):
        from repro.dependence.analysis import DependenceAnalysis

        prog = sor_kernel(6)
        assert prog.is_perfect_nest()
        analysis = DependenceAnalysis(prog, {})
        assert analysis.is_uniform()
        assert len(analysis.iteration_dependences) > 0

    def test_composition_corpus_unchanged(self):
        specs = build_corpus(seed=DEFAULT_CORPUS_SEED)
        again = build_corpus(seed=DEFAULT_CORPUS_SEED)
        assert [s.program.name for s in specs] == [s.program.name for s in again]
