"""Tests for repro.workloads.synthetic and .corpus: generators and ground truth."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence import DependenceAnalysis
from repro.ir.validate import validate_program
from repro.workloads.corpus import SPECFP95_LIKE, CorpusComposition, build_corpus
from repro.workloads.synthetic import (
    generate_corpus_programs,
    large_cholesky_nest,
    large_uniform_loop,
    random_coupled_loop,
    scale_partition_case,
)


class TestRandomCoupledLoop:
    def test_programs_are_well_formed(self):
        rng = random.Random(7)
        for _ in range(10):
            spec = random_coupled_loop(rng, n1=6, n2=6)
            assert validate_program(spec.program) == []

    def test_forced_uniform_has_equal_matrices(self):
        rng = random.Random(11)
        spec = random_coupled_loop(rng, force_uniform=True)
        assert spec.A == spec.B
        assert spec.uniform

    def test_forced_nonuniform_has_differing_matrices(self):
        rng = random.Random(13)
        spec = random_coupled_loop(rng, force_uniform=False)
        assert spec.A != spec.B
        assert not spec.uniform

    def test_force_full_rank(self):
        rng = random.Random(17)
        for _ in range(5):
            spec = random_coupled_loop(rng, force_full_rank=True)
            assert spec.full_rank

    def test_deterministic_given_seed(self):
        a = random_coupled_loop(random.Random(5), n1=4, n2=4)
        b = random_coupled_loop(random.Random(5), n1=4, n2=4)
        assert a.A == b.A and a.B == b.B and a.a == b.a and a.b == b.b

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_accesses_stay_in_bounds(self, seed):
        spec = random_coupled_loop(random.Random(seed), n1=5, n2=5)
        prog = spec.program
        ctx = prog.statement_contexts()[0]
        shape = prog.array_shapes["x"]
        for _, iteration in prog.sequential_iterations({}):
            env = dict(zip(ctx.index_names, iteration))
            for ref in ctx.statement.writes + ctx.statement.reads:
                idx = ref.evaluate(env)
                assert all(0 <= v < s for v, s in zip(idx, shape))

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_uniform_label_consistent_with_exact_analysis(self, seed):
        spec = random_coupled_loop(random.Random(seed), n1=5, n2=5, force_uniform=True)
        analysis = DependenceAnalysis(spec.program, {})
        assert analysis.is_uniform()

    def test_generate_corpus_programs(self):
        specs = generate_corpus_programs(seed=3, count=12, uniform_fraction=0.5)
        assert len(specs) == 12
        assert len({s.program.name for s in specs}) == 12


class TestScalePartitionCase:
    def test_small_case_ground_truth(self):
        space, rd = scale_partition_case(4, 3)
        assert space.shape == (12, 2)
        expected = {
            ((i, j), (i + 1, j + 1))
            for i in range(1, 4)
            for j in range(1, 3)
        }
        assert rd.pairs == frozenset(expected)

    def test_matches_exact_analysis_of_large_uniform_loop(self):
        prog = large_uniform_loop(6, 5)
        assert validate_program(prog) == []
        analysis = DependenceAnalysis(prog, {})
        space, rd = scale_partition_case(6, 5)
        assert analysis.iteration_dependences.pairs == rd.pairs
        assert {tuple(p) for p in space.tolist()} == set(
            analysis.iteration_space_points
        )

    def test_other_distances(self):
        _, rd = scale_partition_case(5, 5, distance=(1, -1))
        assert ((1, 2), (2, 1)) in rd
        assert ((1, 1), (2, 0)) not in rd  # target leaves the box

    def test_lex_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            scale_partition_case(5, 5, distance=(-1, 0))
        with pytest.raises(ValueError):
            scale_partition_case(5, 5, distance=(0, 0))


class TestLargeCholeskyNest:
    def test_ground_truth_structure(self):
        """Pinned at a small bound: instance count, dependence pattern, and
        the three-wavefront dataflow shape the benchmark relies on."""
        from repro.core.partitioner import dataflow_branch
        from repro.core.statement import build_statement_space

        n = 8
        prog = large_cholesky_nest(n)
        assert validate_program(prog) == []
        space = build_statement_space(prog, {})
        assert len(space) == n * (n + 1) // 2 + n
        # every dependence couples s2's diagonal write with a panel read (or
        # the intra-row tmp flow); spot-check the two families at (i, j):
        unify = space.unify
        rd = space.rd
        assert (unify("s2", (2,)), unify("s1", (5, 2))) in rd  # a(2,2) flow
        assert (unify("s1", (3, 3)), unify("s2", (3,))) in rd  # tmp(3,3) flow
        result = dataflow_branch(prog, {})
        assert result.schedule.num_phases == 3
        assert result.schedule.total_work == len(space)
        assert result.statement_space is not None

    def test_schedule_validates_semantically(self):
        from repro.core.strategy import PlanConfig, plan

        p = plan(
            large_cholesky_nest(10),
            config=PlanConfig(strategies=("dataflow",)),
            cache=False,
        )
        report = p.validate(seeds=(0, 1))
        assert report.ok and report.respects_dependences


class TestCorpus:
    def test_build_corpus_deterministic(self):
        a = build_corpus(CorpusComposition("t", 20, 0.5, 0.5), seed=1)
        b = build_corpus(CorpusComposition("t", 20, 0.5, 0.5), seed=1)
        assert [s.A for s in a] == [s.A for s in b]

    def test_composition_roughly_respected(self):
        comp = CorpusComposition("t", 120, 0.5, 0.5)
        specs = build_corpus(comp, seed=42)
        coupled_fraction = sum(1 for s in specs if s.coupled) / len(specs)
        # generation is stochastic; allow a generous tolerance
        assert 0.3 <= coupled_fraction <= 0.75

    def test_default_composition(self):
        assert SPECFP95_LIKE.coupled_fraction == 0.45
        assert SPECFP95_LIKE.expected_nonuniform_fraction == 0.45 * 0.5

    def test_separable_loops_are_uncoupled_and_uniform(self):
        comp = CorpusComposition("t", 30, 0.0, 0.5)
        specs = build_corpus(comp, seed=9)
        assert all(not s.coupled and s.uniform for s in specs)
