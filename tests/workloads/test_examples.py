"""Tests for repro.workloads.examples: the paper's example programs."""

import pytest

from repro.ir.normalize import is_normalized
from repro.ir.validate import validate_program
from repro.workloads.examples import (
    PAPER_EXAMPLES,
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
    paper_example,
)


class TestFactories:
    def test_registry(self):
        assert set(PAPER_EXAMPLES) == {"figure1", "figure2", "example2", "example3", "cholesky"}
        assert paper_example("figure2").name == "figure2"
        with pytest.raises(KeyError):
            paper_example("nope")

    def test_figure1_symbolic_vs_concrete(self):
        assert figure1_loop().parameters == ("N1", "N2")
        assert figure1_loop(10, 10).parameters == ()
        assert figure1_loop(10).parameters == ("N2",)

    def test_figure1_structure(self):
        prog = figure1_loop(10, 10)
        assert prog.is_perfect_nest()
        assert prog.index_names() == ("I1", "I2")
        stmt = prog.statements()[0]
        assert str(stmt.writes[0]) == "a(3*I1+1, 2*I1+I2-1)"
        assert str(stmt.reads[0]) == "a(I1+3, I2+1)"

    def test_figure2_structure(self):
        prog = figure2_loop(20)
        assert prog.is_perfect_nest()
        stmt = prog.statements()[0]
        assert str(stmt.writes[0]) == "a(2*I)"
        assert str(stmt.reads[0]) == "a(21-I)" or str(stmt.reads[0]) == "a(-I+21)"

    def test_example2_structure(self):
        prog = example2_loop(12)
        stmt = prog.statements()[0]
        assert str(stmt.writes[0]) == "a(2*I+3, J+1)"
        assert prog.index_names() == ("I", "J")

    def test_example3_is_imperfect(self):
        prog = example3_loop(10)
        assert not prog.is_perfect_nest()
        assert [s.label for s in prog.statements()] == ["s1", "s2"]
        assert prog.context_of("s1").index_names == ("I", "J", "K")
        assert prog.context_of("s2").index_names == ("I", "J")

    def test_cholesky_structure(self):
        prog = cholesky_loop(nmat=2, m=2, n=5, nrhs=1)
        labels = [s.label for s in prog.statements()]
        assert set(labels) == {f"s{k}" for k in range(1, 10)}
        assert is_normalized(prog)
        assert len(prog.body) == 2  # two top-level nests

    def test_all_examples_validate(self):
        for name in PAPER_EXAMPLES:
            if name == "cholesky":
                prog = paper_example(name, nmat=1, m=2, n=4, nrhs=1)
            elif name == "figure1":
                prog = paper_example(name, n1=5, n2=5)
            elif name == "figure2":
                prog = paper_example(name)
            else:
                prog = paper_example(name, n=6)
            assert validate_program(prog) == [], name


class TestSubscriptsStayInsideArrays:
    @pytest.mark.parametrize(
        "prog",
        [figure1_loop(12, 15), figure2_loop(20), example2_loop(14), example3_loop(14),
         cholesky_loop(nmat=2, m=2, n=5, nrhs=1)],
        ids=["fig1", "fig2", "ex2", "ex3", "cholesky"],
    )
    def test_every_access_is_in_bounds(self, prog):
        contexts = {c.statement.label: c for c in prog.statement_contexts()}
        for label, iteration in prog.sequential_iterations({}):
            ctx = contexts[label]
            env = dict(zip(ctx.index_names, iteration))
            for ref in ctx.statement.writes + ctx.statement.reads:
                shape = prog.array_shapes[ref.array]
                idx = ref.evaluate(env)
                assert all(0 <= v < s for v, s in zip(idx, shape)), (label, iteration, ref.array, idx)
