"""Tests for repro.runtime.threaded: real thread-pool execution."""

import numpy as np
import pytest

from repro.core import recurrence_chain_partition
from repro.runtime.executor import execute_sequential
from repro.runtime.threaded import execute_schedule_threaded
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop


class TestThreadedExecution:
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_matches_sequential(self, n_threads):
        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(prog, result.schedule, {}, n_threads=n_threads)
        assert np.array_equal(ref["a"], run.store["a"])
        assert run.n_threads == n_threads
        assert run.instances_executed == result.schedule.total_work
        assert run.phases_executed == result.schedule.num_phases

    def test_other_examples(self):
        for prog in (figure2_loop(20), example2_loop(12)):
            result = recurrence_chain_partition(prog)
            ref = execute_sequential(prog, {})
            run = execute_schedule_threaded(prog, result.schedule, {}, n_threads=3)
            for name in ref:
                assert np.array_equal(ref[name], run.store[name]), prog.name

    def test_invalid_thread_count(self):
        prog = figure2_loop(10)
        result = recurrence_chain_partition(prog)
        with pytest.raises(ValueError):
            execute_schedule_threaded(prog, result.schedule, {}, n_threads=0)

    def test_shuffled_distribution_matches_sequential(self):
        """seed/rng (aligned with execute_schedule's signature) shuffle the
        worker distribution without changing the result."""
        import random

        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        for kwargs in ({"seed": 7}, {"rng": random.Random(123)}):
            run = execute_schedule_threaded(
                prog, result.schedule, {}, n_threads=3, **kwargs
            )
            assert np.array_equal(ref["a"], run.store["a"]), kwargs
            assert run.instances_executed == result.schedule.total_work

    def test_shuffled_array_phase_matches_sequential(self):
        """ArrayPhase row permutation under seed keeps results exact."""
        from repro.core import ArrayPhase, PlanConfig, plan
        from repro.workloads.synthetic import large_uniform_loop

        prog = large_uniform_loop(12, 9)
        p = plan(
            prog,
            config=PlanConfig(engine="vector", strategies=("dataflow",)),
            cache=False,
        )
        assert any(isinstance(ph, ArrayPhase) for ph in p.schedule.phases)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(prog, p.schedule, {}, n_threads=4, seed=1)
        assert np.array_equal(ref["x"], run.store["x"])

    @pytest.mark.parametrize("n_threads", [1, 4])
    def test_locked_execution_matches_sequential(self, n_threads):
        """lock_free=False serializes per-array but must not change results."""
        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(
            prog, result.schedule, {}, n_threads=n_threads, lock_free=False
        )
        assert np.array_equal(ref["a"], run.store["a"])
        assert run.instances_executed == result.schedule.total_work


class TestLockedPhaseKinds:
    """lock_free=False exercises the per-array-lock worker bodies of all
    three phase kinds: unit phases (above), ArrayPhase and UnifiedArrayPhase."""

    def test_locked_array_phase_matches_sequential(self):
        """The _run_rows lock path: ArrayPhase wavefronts under per-array
        locks still produce the sequential result."""
        from repro.core import ArrayPhase, PlanConfig, plan

        from repro.workloads.synthetic import large_uniform_loop

        prog = large_uniform_loop(10, 8)
        p = plan(
            prog,
            config=PlanConfig(engine="vector", strategies=("dataflow",)),
            cache=False,
        )
        assert all(isinstance(ph, ArrayPhase) for ph in p.schedule.phases)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(
            prog, p.schedule, {}, n_threads=3, lock_free=False, seed=2
        )
        assert np.array_equal(ref["x"], run.store["x"])
        assert run.instances_executed == p.schedule.total_work

    def test_locked_unified_array_phase_matches_sequential(self):
        """The _run_unified_rows lock path: statement-level UnifiedArrayPhase
        wavefronts (multiple arrays per statement, sorted-lock acquisition)
        under per-array locks still produce the sequential result."""
        from repro.core import PlanConfig, UnifiedArrayPhase, plan

        from repro.workloads.synthetic import large_cholesky_nest

        prog = large_cholesky_nest(12)
        p = plan(
            prog,
            config=PlanConfig(engine="vector", strategies=("dataflow",)),
            cache=False,
        )
        assert all(isinstance(ph, UnifiedArrayPhase) for ph in p.schedule.phases)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(
            prog, p.schedule, {}, n_threads=3, lock_free=False, seed=2
        )
        for name in ref:
            assert np.array_equal(ref[name], run.store[name])
        assert run.instances_executed == p.schedule.total_work

    def test_locked_unit_phase_multi_array(self):
        """The _run_units lock path on an imperfect nest touching two arrays
        (locks acquired in sorted name order, no deadlock)."""
        from repro.workloads.examples import example3_loop

        prog = example3_loop(10)
        from repro.core.partitioner import dataflow_branch

        schedule = dataflow_branch(prog, {}, engine="set").schedule
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(
            prog, schedule, {}, n_threads=4, lock_free=False, seed=5
        )
        for name in ref:
            assert np.array_equal(ref[name], run.store[name])
