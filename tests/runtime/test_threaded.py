"""Tests for repro.runtime.threaded: real thread-pool execution."""

import numpy as np
import pytest

from repro.core import recurrence_chain_partition
from repro.runtime.executor import execute_sequential
from repro.runtime.threaded import execute_schedule_threaded
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop


class TestThreadedExecution:
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_matches_sequential(self, n_threads):
        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(prog, result.schedule, {}, n_threads=n_threads)
        assert np.array_equal(ref["a"], run.store["a"])
        assert run.n_threads == n_threads
        assert run.instances_executed == result.schedule.total_work
        assert run.phases_executed == result.schedule.num_phases

    def test_other_examples(self):
        for prog in (figure2_loop(20), example2_loop(12)):
            result = recurrence_chain_partition(prog)
            ref = execute_sequential(prog, {})
            run = execute_schedule_threaded(prog, result.schedule, {}, n_threads=3)
            for name in ref:
                assert np.array_equal(ref[name], run.store[name]), prog.name

    def test_invalid_thread_count(self):
        prog = figure2_loop(10)
        result = recurrence_chain_partition(prog)
        with pytest.raises(ValueError):
            execute_schedule_threaded(prog, result.schedule, {}, n_threads=0)

    def test_shuffled_distribution_matches_sequential(self):
        """seed/rng (aligned with execute_schedule's signature) shuffle the
        worker distribution without changing the result."""
        import random

        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        for kwargs in ({"seed": 7}, {"rng": random.Random(123)}):
            run = execute_schedule_threaded(
                prog, result.schedule, {}, n_threads=3, **kwargs
            )
            assert np.array_equal(ref["a"], run.store["a"]), kwargs
            assert run.instances_executed == result.schedule.total_work

    def test_shuffled_array_phase_matches_sequential(self):
        """ArrayPhase row permutation under seed keeps results exact."""
        from repro.core import ArrayPhase, PlanConfig, plan
        from repro.workloads.synthetic import large_uniform_loop

        prog = large_uniform_loop(12, 9)
        p = plan(
            prog,
            config=PlanConfig(engine="vector", strategies=("dataflow",)),
            cache=False,
        )
        assert any(isinstance(ph, ArrayPhase) for ph in p.schedule.phases)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(prog, p.schedule, {}, n_threads=4, seed=1)
        assert np.array_equal(ref["x"], run.store["x"])

    @pytest.mark.parametrize("n_threads", [1, 4])
    def test_locked_execution_matches_sequential(self, n_threads):
        """lock_free=False serializes per-array but must not change results."""
        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        run = execute_schedule_threaded(
            prog, result.schedule, {}, n_threads=n_threads, lock_free=False
        )
        assert np.array_equal(ref["a"], run.store["a"])
        assert run.instances_executed == result.schedule.total_work
