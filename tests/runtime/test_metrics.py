"""Tests for repro.runtime.metrics: speedup tables and scheme comparison."""

import pytest

from repro.baselines import pdm_schedule, pl_schedule
from repro.core import recurrence_chain_partition
from repro.dependence import DependenceAnalysis
from repro.runtime.metrics import (
    SpeedupTable,
    compare_schemes,
    crossover_points,
    schedule_parallelism,
)
from repro.runtime.simulator import CostModel
from repro.workloads.examples import figure1_loop


class TestScheduleParallelism:
    def test_figure1(self):
        result = recurrence_chain_partition(figure1_loop(10, 10))
        metrics = schedule_parallelism(result.schedule)
        assert metrics["work"] == 100.0
        assert metrics["phases"] == 3.0
        assert metrics["average_parallelism"] > 10

    def test_empty_schedule_reports_zero_not_nan(self):
        from repro.core.schedule import Schedule

        metrics = schedule_parallelism(Schedule.from_phases("empty", []))
        assert metrics["work"] == 0.0
        assert metrics["span"] == 0.0
        assert metrics["average_parallelism"] == 0.0  # not NaN


class TestCompareSchemes:
    def make_table(self):
        prog = figure1_loop(20, 30)
        analysis = DependenceAnalysis(prog, {})
        schedules = {
            "REC": recurrence_chain_partition(prog).schedule,
            "PDM": pdm_schedule(prog, {}, analysis),
            "PL": pl_schedule(prog, {}, analysis),
        }
        return compare_schemes(schedules, (1, 2, 3, 4))

    def test_table_shape(self):
        table = self.make_table()
        assert table.processors == (1, 2, 3, 4)
        assert set(table.series) == {"REC", "PDM", "PL"}
        assert len(table.row("REC")) == 4

    def test_winner(self):
        table = self.make_table()
        assert table.winner(4) in {"REC", "PDM", "PL"}

    def test_winner_with_missing_entries(self):
        # B has no entry at p=2: it counts as 0.0 speedup, no KeyError
        table = SpeedupTable(
            (1, 2), {"A": {1: 1.0, 2: 3.0}, "B": {1: 2.0}}
        )
        assert table.winner(1) == "B"
        assert table.winner(2) == "A"

    def test_winner_all_missing(self):
        table = SpeedupTable((1,), {"A": {}, "B": {}})
        assert table.winner(1) in {"A", "B"}

    def test_format_contains_all_schemes(self):
        text = self.make_table().format()
        for name in ("REC", "PDM", "PL", "p=1", "p=4"):
            assert name in text

    def test_per_scheme_cost_models(self):
        prog = figure1_loop(20, 30)
        rec = recurrence_chain_partition(prog).schedule
        cheap = CostModel(instance_cost_factor=0.5)
        table = compare_schemes({"REC": rec}, (1, 2), {"REC": cheap})
        assert table.series["REC"][1] > 1.5  # super-linear due to cost factor


class TestCrossover:
    def test_no_crossover(self):
        table = SpeedupTable(
            (1, 2, 3, 4),
            {"A": {1: 1, 2: 2, 3: 3, 4: 4}, "B": {1: 0.5, 2: 1, 3: 1.5, 4: 2}},
        )
        assert crossover_points(table, "A", "B") == []

    def test_single_crossover(self):
        table = SpeedupTable(
            (1, 2, 3, 4),
            {"A": {1: 2, 2: 2.5, 3: 2.8, 4: 2.9}, "B": {1: 1, 2: 2, 3: 3, 4: 3.8}},
        )
        assert crossover_points(table, "A", "B") == [3]
