"""Tests for repro.runtime.shm + repro.runtime.process: the shared-memory
process pool.

These are the CI smoke tests for the ``process`` backend: worker count is
kept at 2 and every test skips gracefully where POSIX shared memory is
unavailable (e.g. a container without ``/dev/shm``).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.strategy import PlanConfig, plan
from repro.runtime import execute, execute_sequential, make_store
from repro.runtime.process import (
    ProcessPool,
    default_mp_context,
    process_unavailable_reason,
)
from repro.runtime.shm import (
    ALIGNMENT,
    ArrayDescriptor,
    SharedArrayStore,
    shared_memory_unavailable_reason,
)
from repro.workloads.examples import example3_loop, figure1_loop
from repro.workloads.synthetic import large_cholesky_nest, large_uniform_loop

pytestmark = pytest.mark.skipif(
    process_unavailable_reason() is not None,
    reason=f"process backend unavailable: {process_unavailable_reason()}",
)

#: CI guard: smoke tests never use more than 2 workers.
WORKERS = 2


class TestSharedArrayStore:
    def test_descriptor_table_layout(self):
        """Descriptors carry exactly (name, shape, dtype, offset), sorted by
        name and cache-line aligned — the only thing a worker is shipped."""
        prog = example3_loop(6)
        store = make_store(prog)
        with SharedArrayStore.from_store(store) as shared:
            names = [d.name for d in shared.descriptors]
            assert names == sorted(store)
            for d in shared.descriptors:
                assert isinstance(d, ArrayDescriptor)
                assert d.offset % ALIGNMENT == 0
                assert d.shape == store[d.name].shape
                assert np.dtype(d.dtype) == store[d.name].dtype
            # arrays must not overlap inside the segment
            spans = sorted((d.offset, d.offset + d.nbytes) for d in shared.descriptors)
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert start >= end

    def test_create_copies_contents_in(self):
        prog = figure1_loop(5, 5)
        store = make_store(prog, fill="random", seed=3)
        with SharedArrayStore.from_store(store) as shared:
            for name in store:
                assert np.array_equal(shared.arrays[name], store[name])
                assert shared.arrays[name] is not store[name]

    def test_attach_sees_mutations(self):
        """The attach-once protocol: a second mapping of the segment sees
        writes through the first immediately (same physical memory)."""
        prog = figure1_loop(5, 5)
        with SharedArrayStore.from_store(make_store(prog)) as shared:
            attached = SharedArrayStore.attach(shared.shm_name, shared.descriptors)
            try:
                shared.arrays["a"].flat[0] = 12345
                assert attached.arrays["a"].flat[0] == 12345
                attached.arrays["a"].flat[1] = 54321
                assert shared.arrays["a"].flat[1] == 54321
                assert not attached.owner
            finally:
                attached.close()

    def test_copy_out_into_fills_in_place(self):
        prog = figure1_loop(5, 5)
        store = make_store(prog)
        with SharedArrayStore.from_store(store) as shared:
            shared.arrays["a"][:] = 7
            out = shared.copy_out(store)
            assert out is store
            assert (store["a"] == 7).all()


class TestProcessPool:
    def test_pool_runs_all_phase_kinds(self):
        """One pool executes unit phases, ArrayPhase and UnifiedArrayPhase —
        workers attach once and barrier between phases."""
        cases = [
            (figure1_loop(8, 8), None),  # unit phases (P1/chains/P3)
            (  # ArrayPhase wavefronts
                large_uniform_loop(8, 6),
                PlanConfig(engine="vector", strategies=("dataflow",)),
            ),
            (  # statement-level UnifiedArrayPhase wavefronts
                large_cholesky_nest(10),
                PlanConfig(engine="vector", strategies=("dataflow",)),
            ),
        ]
        for prog, config in cases:
            p = plan(prog, config=config, cache=False)
            ref = execute_sequential(prog, {})
            store = make_store(prog)
            with ProcessPool(prog, store, workers=WORKERS) as pool:
                for phase in p.schedule.phases:
                    executed, tasks = pool.run_phase(phase)
                    assert executed == phase.work
                    assert 1 <= tasks <= WORKERS
                pool.copy_out(store)
            for name in ref:
                assert np.array_equal(ref[name], store[name]), prog.name

    def test_worker_count_validation(self):
        prog = figure1_loop(4, 4)
        with pytest.raises(ValueError):
            ProcessPool(prog, make_store(prog), workers=0)

    def test_single_worker_pool(self):
        prog = figure1_loop(6, 6)
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        result = execute(prog, p.schedule, {}, backend="process", workers=1)
        assert np.array_equal(ref["a"], result.store["a"])

    def test_worker_exception_propagates_with_traceback(self):
        """A statement whose semantics raises must surface in the parent as a
        RuntimeError carrying the remote traceback, not hang the barrier."""

        prog = figure1_loop(6, 6)
        for stmt in prog.statements():
            object.__setattr__(stmt, "semantics", _exploding_semantics)
        p = plan(prog, cache=False)
        store = make_store(prog)
        with ProcessPool(prog, store, workers=WORKERS) as pool:
            with pytest.raises(RuntimeError, match="boom-semantics"):
                for phase in p.schedule.phases:
                    pool.run_phase(phase)

    def test_start_method_reported(self):
        prog = figure1_loop(4, 4)
        with ProcessPool(prog, make_store(prog), workers=1) as pool:
            assert pool.start_method == default_mp_context().get_start_method()
        result = execute(prog, plan(prog, cache=False).schedule, {},
                         backend="process", workers=1)
        assert result.meta["start_method"] in ("fork", "spawn", "forkserver")


def _exploding_semantics(arrays, env, reads):
    raise ValueError("boom-semantics")


class TestProcessBackendStats:
    def test_per_phase_worker_counts(self):
        prog = large_uniform_loop(10, 8)
        p = plan(
            prog,
            config=PlanConfig(engine="vector", strategies=("dataflow",)),
            cache=False,
        )
        result = execute(prog, p.schedule, {}, backend="process", workers=WORKERS)
        assert result.workers == WORKERS
        for stat, phase in zip(result.phase_stats, p.schedule.phases):
            assert stat.instances == phase.work
            assert 1 <= stat.workers <= WORKERS

    def test_varied_initial_store_roundtrip(self):
        """Random initial contents survive the copy-in/copy-out unchanged
        through a full schedule execution."""
        prog = example3_loop(8)
        p = plan(prog, cache=False)
        ref_store = make_store(prog, fill="random", seed=11)
        ref = execute_sequential(prog, {}, store={k: v.copy() for k, v in ref_store.items()})
        result = execute(
            prog, p.schedule, {}, store=ref_store, backend="process", workers=WORKERS
        )
        for name in ref:
            assert np.array_equal(ref[name], result.store[name])


def test_unavailable_reason_is_none_here():
    """This suite only runs where the probe passes; pin the probe's contract."""
    assert shared_memory_unavailable_reason() is None
    assert process_unavailable_reason() is None


# ---------------------------------------------------------------------------
# lifecycle regressions: crash-time segment cleanup, shutdown escalation,
# and pool reuse across execute() calls (the serving daemon's warm path)
# ---------------------------------------------------------------------------


def _segment_path(shared):
    return os.path.join("/dev/shm", shared.shm_name)


def _ignore_sigterm_forever():
    """A deliberately-wedged worker: ignores the sentinel *and* SIGTERM."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


class TestPoolLifecycle:
    def test_worker_crash_mid_lifetime_unlinks_segment(self):
        """Regression: a worker killed after the store is packed must not
        leak the shared segment — shutdown's finally path always closes and
        unlinks the owner's mapping."""
        prog = figure1_loop(8, 8)
        p = plan(prog, cache=False)
        pool = ProcessPool(prog, workers=WORKERS)
        try:
            pool.attach_store(make_store(prog))
            seg = _segment_path(pool.shared)
            assert os.path.exists(seg)
            # kill every worker: a surviving sibling could otherwise steal
            # and ack the dead worker's tasks off the shared queue
            for victim in pool._procs:
                os.kill(victim.pid, signal.SIGKILL)
            for victim in pool._procs:
                victim.join(timeout=5)
            with pytest.raises(RuntimeError, match="died"):
                pool.run_phase(p.schedule.phases[0])
            assert pool.broken
        finally:
            pool.shutdown()
        assert not os.path.exists(seg)
        # a broken pool refuses further stores instead of hanging a barrier
        with pytest.raises(RuntimeError):
            pool.attach_store(make_store(prog))

    def test_detach_store_with_broken_pool_still_unlinks(self):
        """detach_store() must skip the worker round-trip when the pool is
        broken (the acks will never come) yet still destroy the segment."""
        prog = figure1_loop(6, 6)
        pool = ProcessPool(prog, workers=WORKERS)
        try:
            pool.attach_store(make_store(prog))
            seg = _segment_path(pool.shared)
            for proc in pool._procs:
                os.kill(proc.pid, signal.SIGKILL)
            for proc in pool._procs:
                proc.join(timeout=5)
            assert pool.broken
            pool.detach_store()
            assert not os.path.exists(seg)
        finally:
            pool.shutdown()

    def test_shutdown_escalates_to_kill_on_wedged_worker(self):
        """Regression: shutdown() used to stop at terminate(); a SIGTERM-
        ignoring worker leaked the process and its queue feeder threads.
        The kill() escalation must reap it within the configured timeouts."""
        prog = figure1_loop(6, 6)
        pool = ProcessPool(prog, workers=WORKERS)
        stubborn = pool._ctx.Process(target=_ignore_sigterm_forever, daemon=True)
        stubborn.start()
        pool._procs.append(stubborn)
        pool.attach_store(make_store(prog))
        seg = _segment_path(pool.shared)
        start = time.perf_counter()
        pool.shutdown(join_timeout=0.2, kill_timeout=0.5)
        elapsed = time.perf_counter() - start
        assert elapsed < 10
        for proc in pool._procs:
            assert not proc.is_alive()
        assert not os.path.exists(seg)

    def test_shutdown_idempotent(self):
        prog = figure1_loop(5, 5)
        pool = ProcessPool(prog, workers=WORKERS)
        pool.attach_store(make_store(prog))
        pool.shutdown()
        pool.shutdown()  # second call must be harmless
        assert pool.shared is None


class TestPoolReuse:
    def test_injected_pool_serves_many_requests(self):
        """One persistent pool serves repeated execute() calls: results stay
        bit-identical to the sequential reference, runs are flagged as
        injected, and no segment survives the pool's shutdown."""
        prog = example3_loop(8)
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        pool = ProcessPool(prog, workers=WORKERS)
        seen_segments = []
        try:
            for _ in range(3):
                result = execute(prog, p.schedule, {}, backend="process", pool=pool)
                assert result.meta["pool"] == "injected"
                assert result.workers == WORKERS
                for name in ref:
                    assert np.array_equal(ref[name], result.store[name])
                assert pool.shared is None  # detached after every request
        finally:
            pool.shutdown()
        leftovers = [s for s in seen_segments if os.path.exists(s)]
        assert not leftovers

    def test_injected_pool_requires_process_backend(self):
        prog = figure1_loop(5, 5)
        p = plan(prog, cache=False)
        pool = ProcessPool(prog, workers=WORKERS)
        try:
            with pytest.raises(ValueError, match="backend='process'"):
                execute(prog, p.schedule, {}, backend="serial", pool=pool)
        finally:
            pool.shutdown()
