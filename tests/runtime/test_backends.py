"""Tests for repro.runtime.backends: the execution-backend registry.

The registry's contract: every registered backend takes the same inputs,
returns the same :class:`RunResult` shape, and (for the executing backends)
produces a final store bit-identical to the sequential reference on every
example workload — the execution twin of the planning facade's
``plan() ≡ old dispatch`` pinning in ``tests/core/test_strategy.py``.
"""

import numpy as np
import pytest

import repro
from repro.core import recurrence_chain_partition
from repro.core.strategy import PlanConfig, plan
from repro.runtime import (
    BackendUnavailable,
    ExecConfig,
    ExecutionBackend,
    RunResult,
    ThreadedRun,
    backend_names,
    backend_table,
    execute,
    execute_schedule,
    execute_schedule_threaded,
    execute_sequential,
    get_backend,
    make_store,
    measured_speedups,
    register_backend,
    run_metrics,
)
from repro.workloads.examples import (
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)
from repro.workloads.synthetic import large_cholesky_nest, large_uniform_loop

EXECUTING_BACKENDS = ("serial", "threaded", "process")

#: (program, PlanConfig) pairs covering unit phases (recurrence chains),
#: ArrayPhase wavefronts and statement-level UnifiedArrayPhase wavefronts.
WORKLOADS = [
    (figure1_loop(10, 12), None),
    (figure2_loop(16), None),
    (example2_loop(10), None),
    (example3_loop(8), None),
    (large_uniform_loop(12, 9), PlanConfig(engine="vector", strategies=("dataflow",))),
    (large_cholesky_nest(14), PlanConfig(engine="vector", strategies=("dataflow",))),
]


def _stores_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == (
            "serial", "threaded", "process", "simulated", "compiled"
        )

    def test_get_backend_unknown_name(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("gpu")

    def test_backend_table_rows(self):
        rows = backend_table()
        assert [r["name"] for r in rows] == list(backend_names())
        assert all(r["description"] for r in rows)

    def test_register_backend_replaces_in_place(self):
        original = get_backend("serial")
        try:
            replacement = ExecutionBackend(
                name="serial", description="stub", runner=original.runner
            )
            register_backend(replacement)
            assert get_backend("serial") is replacement
            assert backend_names()[0] == "serial"  # order preserved
        finally:
            register_backend(original)

    def test_unavailable_backend_raises(self):
        probe = ExecutionBackend(
            name="always-broken",
            description="test stub",
            runner=get_backend("serial").runner,
            available=lambda: "not on this machine",
        )
        register_backend(probe)
        try:
            prog = figure1_loop(4, 4)
            result = recurrence_chain_partition(prog)
            with pytest.raises(BackendUnavailable, match="not on this machine"):
                execute(prog, result.schedule, {}, backend="always-broken")
        finally:
            from repro.runtime import backends as backends_module

            del backends_module._REGISTRY["always-broken"]


class TestExecConfig:
    def test_defaults(self):
        cfg = ExecConfig()
        assert cfg.backend == "serial"
        assert cfg.workers == 4
        assert cfg.seed == 0
        assert cfg.lock_free

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecConfig(workers=0)
        with pytest.raises(ValueError):
            ExecConfig(mp_context="greenlet")
        with pytest.raises(ValueError):
            ExecConfig(backend="")

    def test_hashable_for_plan_config(self):
        """ExecConfig rides inside PlanConfig, which keys the plan cache."""
        a = PlanConfig(exec_config=ExecConfig(backend="process", workers=2))
        b = PlanConfig(exec_config=ExecConfig(backend="process", workers=2))
        assert a == b and hash(a) == hash(b)
        with pytest.raises(TypeError):
            PlanConfig(exec_config="process")


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", EXECUTING_BACKENDS)
    def test_bit_identical_to_sequential_on_every_workload(self, backend):
        for prog, config in WORKLOADS:
            p = plan(prog, config=config, cache=False)
            ref = execute_sequential(prog, {})
            result = execute(prog, p.schedule, {}, backend=backend, workers=2)
            assert isinstance(result, RunResult)
            assert _stores_equal(ref, result.store), (prog.name, backend)
            assert result.backend == backend
            assert result.instances_executed == p.schedule.total_work
            assert result.phases_executed == p.schedule.num_phases

    @pytest.mark.parametrize("backend", EXECUTING_BACKENDS)
    def test_shuffle_seeds_do_not_change_results(self, backend):
        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        for seed in (None, 0, 7):
            result = execute(
                prog, p.schedule, {}, backend=backend, workers=2, seed=seed
            )
            assert _stores_equal(ref, result.store), (backend, seed)

    def test_caller_store_is_mutated_in_place(self):
        """Every backend fills the store the caller passed (the historical
        contract), including the process backend's shared-memory copy-out."""
        prog = figure2_loop(12)
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        for backend in EXECUTING_BACKENDS:
            store = make_store(prog)
            result = execute(prog, p.schedule, {}, store=store, backend=backend, workers=2)
            assert result.store is store
            assert _stores_equal(ref, store), backend

    def test_phase_stats_shape(self):
        prog = figure1_loop(8, 8)
        p = plan(prog, cache=False)
        result = execute(prog, p.schedule, {}, backend="serial")
        assert len(result.phase_stats) == p.schedule.num_phases
        for stat, phase in zip(result.phase_stats, p.schedule.phases):
            assert stat.name == phase.name
            assert stat.instances == phase.work
            assert stat.units == len(phase)
            assert stat.workers == 1
            assert stat.elapsed_s >= 0.0
        assert result.elapsed_s >= sum(result.phase_elapsed()) - 1e-9

    def test_config_and_overrides_compose(self):
        prog = figure1_loop(8, 8)
        p = plan(prog, cache=False)
        cfg = ExecConfig(backend="serial", seed=3)
        result = execute(prog, p.schedule, {}, config=cfg, backend="threaded", workers=2)
        assert result.backend == "threaded"
        assert result.workers == 2


class TestSimulatedBackend:
    def test_wraps_cost_model(self):
        from repro.runtime import CostModel, simulate_schedule

        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        result = execute(prog, p.schedule, {}, backend="simulated", workers=4)
        assert result.store is None  # nothing executed
        assert result.meta["simulated"] is True
        sim = simulate_schedule(p.schedule, processors=4)
        assert result.meta["speedup"] == pytest.approx(sim.speedup)
        assert result.elapsed_s == pytest.approx(sim.parallel_time)
        assert result.phase_elapsed() == pytest.approx(sim.phase_times)

    def test_custom_cost_model_via_config(self):
        from repro.runtime import CostModel, simulate_schedule

        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        cm = CostModel(barrier_cost=50.0)
        result = execute(
            prog, p.schedule, {},
            config=ExecConfig(backend="simulated", workers=2, cost_model=cm),
        )
        assert result.elapsed_s == pytest.approx(
            simulate_schedule(p.schedule, processors=2, cost_model=cm).parallel_time
        )


class TestShims:
    """The historical entry points keep working over the registry."""

    def test_execute_schedule_shim_matches_serial_backend(self):
        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        via_shim = execute_schedule(prog, p.schedule, {}, seed=5)
        via_registry = execute(prog, p.schedule, {}, backend="serial", seed=5)
        assert isinstance(via_shim, dict)
        assert _stores_equal(via_shim, via_registry.store)

    def test_execute_schedule_threaded_shim_returns_threadedrun(self):
        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        run = execute_schedule_threaded(prog, p.schedule, {}, n_threads=3)
        assert isinstance(run, ThreadedRun)
        assert run.n_threads == 3
        assert run.phases_executed == p.schedule.num_phases
        assert run.instances_executed == p.schedule.total_work
        assert _stores_equal(execute_sequential(prog, {}), run.store)


class TestPlanExecuteWiring:
    def test_plan_execute_backend_kwarg(self):
        prog = figure1_loop(10, 10)
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        for backend in EXECUTING_BACKENDS:
            result = p.execute(backend=backend, workers=2)
            assert isinstance(result, RunResult)
            assert _stores_equal(ref, result.store), backend

    def test_plan_config_exec_config_default(self):
        """PlanConfig(exec_config=...) makes a bare execute() take the
        registry path with those defaults."""
        prog = figure1_loop(10, 10)
        p = plan(
            prog,
            config=PlanConfig(exec_config=ExecConfig(backend="threaded", workers=2)),
            cache=False,
        )
        result = p.execute()
        assert isinstance(result, RunResult)
        assert result.backend == "threaded"
        assert result.workers == 2
        assert _stores_equal(execute_sequential(prog, {}), result.store)
        # per-call override still wins
        assert p.execute(backend="serial").backend == "serial"

    def test_plan_execute_legacy_paths_unchanged(self):
        prog = figure1_loop(10, 10)
        p = plan(prog, cache=False)
        store = p.execute()
        assert isinstance(store, dict)
        run = p.execute(threads=2)
        assert isinstance(run, ThreadedRun)

    def test_process_backend_rejects_locking(self):
        prog = figure1_loop(6, 6)
        p = plan(prog, cache=False)
        with pytest.raises(ValueError, match="lock-free"):
            p.execute(backend="process", workers=2, lock_free=False)


class TestRunMetrics:
    def test_run_metrics_counters(self):
        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        result = execute(prog, p.schedule, {}, backend="serial")
        m = run_metrics(result)
        assert m["backend"] == "serial"
        assert m["instances"] == p.schedule.total_work
        assert m["phases"] == p.schedule.num_phases
        assert m["elapsed_s"] >= m["phase_time_s"] - 1e-9
        assert m["instances_per_s"] > 0

    def test_measured_speedups_baseline(self):
        prog = figure1_loop(10, 12)
        p = plan(prog, cache=False)
        serial = execute(prog, p.schedule, {}, backend="serial")
        threaded = execute(prog, p.schedule, {}, backend="threaded", workers=2)
        table = measured_speedups({"serial": serial, "threaded@2": threaded})
        assert table["serial"] == pytest.approx(1.0)
        assert table["threaded@2"] == pytest.approx(
            serial.elapsed_s / threaded.elapsed_s
        )


def test_top_level_exports():
    for name in ("ExecConfig", "RunResult", "backend_names", "backend_table"):
        assert name in repro.__all__
        assert hasattr(repro, name)
