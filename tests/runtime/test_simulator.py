"""Tests for repro.runtime.simulator: the SMP cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExecutionUnit, ParallelPhase, Schedule, recurrence_chain_partition
from repro.runtime.simulator import CostModel, simulate_schedule, speedup_curve
from repro.workloads.examples import figure1_loop


def uniform_schedule(units, work_per_unit=1, phases=1):
    phase_list = []
    for p in range(phases):
        phase_list.append(
            ParallelPhase(
                f"p{p}",
                tuple(
                    ExecutionUnit.chain("s", [(p, u, k) for k in range(work_per_unit)])
                    for u in range(units)
                ),
            )
        )
    return Schedule.from_phases("uniform", phase_list)


class TestCostModel:
    def test_sequential_time(self):
        cm = CostModel(iteration_cost=2.0)
        assert cm.sequential_time(10) == 20.0

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            simulate_schedule(uniform_schedule(4), 0)


class TestSimulation:
    def test_perfect_scaling_without_overheads(self):
        cm = CostModel(barrier_cost=0, unit_overhead=0, phase_start_overhead=0)
        sched = uniform_schedule(units=8, work_per_unit=10)
        for p in (1, 2, 4, 8):
            res = simulate_schedule(sched, p, cm)
            assert res.parallel_time == pytest.approx(80 / p)
            assert res.speedup == pytest.approx(p)

    def test_speedup_bounded_by_unit_count(self):
        cm = CostModel(barrier_cost=0, unit_overhead=0, phase_start_overhead=0)
        sched = uniform_schedule(units=3, work_per_unit=10)
        res = simulate_schedule(sched, 8, cm)
        assert res.speedup <= 3.0 + 1e-9

    def test_monotone_in_processors(self):
        result = recurrence_chain_partition(figure1_loop(20, 40))
        times = [
            simulate_schedule(result.schedule, p).parallel_time for p in (1, 2, 3, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_busy_time_is_work_conserving(self):
        cm = CostModel(unit_overhead=0, instance_cost_factor=1.0, bound_evaluation_cost=0)
        sched = uniform_schedule(units=5, work_per_unit=3, phases=2)
        res = simulate_schedule(sched, 4, cm)
        assert res.busy_time == pytest.approx(sched.total_work * cm.iteration_cost)

    def test_barrier_cost_per_phase(self):
        cm0 = CostModel(barrier_cost=0, unit_overhead=0, phase_start_overhead=0)
        cm5 = CostModel(barrier_cost=5, unit_overhead=0, phase_start_overhead=0)
        sched = uniform_schedule(units=2, work_per_unit=1, phases=3)
        t0 = simulate_schedule(sched, 2, cm0).parallel_time
        t5 = simulate_schedule(sched, 2, cm5).parallel_time
        assert t5 == pytest.approx(t0 + 15)

    def test_instance_cost_factor_superlinear_speedup(self):
        cm = CostModel(
            barrier_cost=0, unit_overhead=0, phase_start_overhead=0, instance_cost_factor=0.5
        )
        sched = uniform_schedule(units=4, work_per_unit=100)
        res = simulate_schedule(sched, 2, cm)
        # 400 sequential vs 0.5*400/2 parallel -> speedup 4 > 2
        assert res.speedup == pytest.approx(4.0)

    def test_sequential_work_override(self):
        sched = uniform_schedule(units=4, work_per_unit=10)
        cm = CostModel(barrier_cost=0, unit_overhead=0, phase_start_overhead=0)
        res = simulate_schedule(sched, 1, cm, sequential_work=80)
        assert res.speedup == pytest.approx(2.0)

    def test_efficiency_and_utilization(self):
        cm = CostModel(barrier_cost=0, unit_overhead=0, phase_start_overhead=0)
        res = simulate_schedule(uniform_schedule(units=4, work_per_unit=10), 4, cm)
        assert res.efficiency == pytest.approx(1.0)
        assert res.utilization == pytest.approx(1.0)

    @given(st.integers(1, 6), st.integers(1, 12), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_speedup_never_exceeds_processors_without_cost_factor(self, p, units, work):
        sched = uniform_schedule(units=units, work_per_unit=work)
        res = simulate_schedule(sched, p)
        assert res.speedup <= p + 1e-9


class TestSpeedupCurve:
    def test_curve_keys(self):
        result = recurrence_chain_partition(figure1_loop(15, 20))
        curve = speedup_curve(result.schedule, (1, 2, 4))
        assert set(curve) == {1, 2, 4}
        assert curve[4] >= curve[1]
