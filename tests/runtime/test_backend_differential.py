"""Property-based differential tests for the execution-backend registry.

The planning side pins its set/vector engines bit-identical on
Hypothesis-generated programs (``tests/core/test_statement_differential.py``);
this module does the same for the runtime side: **every executing backend of
the registry — serial, threaded, process — must produce a final store
bit-identical to ``execute_sequential``** on the same generated program
stream, over *varied* initial stores (``make_store(fill="random", seed=...)``
— a schedule bug that only corrupts some initial contents still has to be
caught).

The schedules come from the always-applicable dataflow strategy, whose
validity on generated programs is already pinned by the statement-level
differential suite; here the property under test is the *executor*, not the
partitioner.  The process-backend property forks a 2-worker pool per example,
so it runs a reduced example budget.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.core.partitioner import dataflow_branch
from repro.runtime import execute, execute_sequential, make_store
from repro.runtime.process import process_unavailable_reason
from strategies import loop_programs


def _reference_and_schedule(prog, engine, fill_seed):
    schedule = dataflow_branch(prog, {}, engine=engine).schedule
    init = make_store(prog, fill="random", seed=fill_seed)
    ref = execute_sequential(
        prog, {}, store={k: v.copy() for k, v in init.items()}
    )
    return schedule, init, ref

def _assert_backend_matches(prog, schedule, init, ref, backend, **overrides):
    store = {k: v.copy() for k, v in init.items()}
    result = execute(prog, schedule, {}, store=store, backend=backend, **overrides)
    for name in ref:
        assert np.array_equal(ref[name], result.store[name]), (
            f"{backend} diverged from sequential on {name!r}"
        )


class TestBackendDifferential:
    @given(prog=loop_programs(), engine=st.sampled_from(["set", "vector"]),
           fill_seed=st.integers(0, 2**16))
    def test_serial_backend_bit_identical(self, prog, engine, fill_seed):
        schedule, init, ref = _reference_and_schedule(prog, engine, fill_seed)
        _assert_backend_matches(prog, schedule, init, ref, "serial", seed=fill_seed)

    @given(prog=loop_programs(), engine=st.sampled_from(["set", "vector"]),
           fill_seed=st.integers(0, 2**16))
    def test_threaded_backend_bit_identical(self, prog, engine, fill_seed):
        schedule, init, ref = _reference_and_schedule(prog, engine, fill_seed)
        _assert_backend_matches(
            prog, schedule, init, ref, "threaded", workers=2, seed=fill_seed
        )

    @pytest.mark.skipif(
        process_unavailable_reason() is not None,
        reason=f"process backend unavailable: {process_unavailable_reason()}",
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=loop_programs(), engine=st.sampled_from(["set", "vector"]),
           fill_seed=st.integers(0, 2**16))
    def test_process_backend_bit_identical(self, prog, engine, fill_seed):
        schedule, init, ref = _reference_and_schedule(prog, engine, fill_seed)
        _assert_backend_matches(
            prog, schedule, init, ref, "process", workers=2, seed=fill_seed
        )

    @given(prog=loop_programs(min_statements=2), fill_seed=st.integers(0, 2**16))
    def test_backends_agree_across_engines(self, prog, fill_seed):
        """Set-engine and vector-engine schedules of the same program execute
        to the same store through the registry (phase kind must not matter)."""
        set_schedule = dataflow_branch(prog, {}, engine="set").schedule
        vec_schedule = dataflow_branch(prog, {}, engine="vector").schedule
        init = make_store(prog, fill="random", seed=fill_seed)
        outs = []
        for schedule in (set_schedule, vec_schedule):
            store = {k: v.copy() for k, v in init.items()}
            outs.append(
                execute(prog, schedule, {}, store=store, backend="serial").store
            )
        for name in outs[0]:
            assert np.array_equal(outs[0][name], outs[1][name])
