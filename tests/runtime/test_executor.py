"""Tests for repro.runtime.executor: execution and semantic validation."""

import numpy as np
import pytest

from repro.core import ExecutionUnit, ParallelPhase, Schedule, recurrence_chain_partition
from repro.runtime.executor import (
    execute_schedule,
    execute_sequential,
    make_store,
    validate_schedule,
)
from repro.workloads.examples import example3_loop, figure1_loop, figure2_loop


class TestStore:
    def test_make_store_shapes(self):
        prog = figure1_loop(5, 5)
        store = make_store(prog)
        assert set(store) == {"a"}
        assert store["a"].shape == tuple(prog.array_shapes["a"])
        assert store["a"].dtype == np.int64

    def test_fill_modes(self):
        prog = figure2_loop(10)
        assert make_store(prog, fill="zeros")["a"].sum() == 0
        assert make_store(prog, fill="index")["a"].min() >= 1
        with pytest.raises(ValueError):
            make_store(prog, fill="bogus")

    def test_fill_random_is_seeded(self):
        """fill='random' draws seeded values: same seed reproduces, different
        seeds differ (the differential harness varies initial stores this way)."""
        prog = figure2_loop(10)
        a = make_store(prog, fill="random", seed=7)
        b = make_store(prog, fill="random", seed=7)
        c = make_store(prog, fill="random", seed=8)
        assert np.array_equal(a["a"], b["a"])
        assert not np.array_equal(a["a"], c["a"])
        assert a["a"].min() >= 1 and a["a"].dtype == np.int64
        # seed is ignored by the deterministic modes
        assert np.array_equal(
            make_store(prog, fill="index", seed=1)["a"],
            make_store(prog, fill="index", seed=2)["a"],
        )

    def test_missing_shape_detected(self):
        from repro.ir.builder import aref, assign, loop, program

        prog = program("p", loop("I", 1, 3, assign("s", aref("missing", "I"))))
        with pytest.raises(ValueError):
            make_store(prog)


class TestSequentialExecution:
    def test_deterministic(self):
        prog = figure1_loop(6, 6)
        a = execute_sequential(prog, {})
        b = execute_sequential(prog, {})
        assert np.array_equal(a["a"], b["a"])

    def test_changes_array(self):
        prog = figure1_loop(6, 6)
        store = make_store(prog)
        before = store["a"].copy()
        execute_sequential(prog, {}, store)
        assert not np.array_equal(before, store["a"])

    def test_imperfect_nest(self):
        prog = example3_loop(10)
        store = execute_sequential(prog, {})
        assert set(store) == {"a", "tmp"}


class TestScheduleExecution:
    def test_valid_schedule_matches_sequential(self):
        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        ref = execute_sequential(prog, {})
        for seed in (0, 1, 2, 99):
            out = execute_schedule(prog, result.schedule, {}, seed=seed)
            assert np.array_equal(ref["a"], out["a"])

    def test_wrong_order_schedule_detected(self):
        """Executing the phases in reverse order must change the result."""
        prog = figure1_loop(10, 12)
        result = recurrence_chain_partition(prog)
        reversed_schedule = Schedule.from_phases(
            "reversed", list(reversed(result.schedule.phases))
        )
        ref = execute_sequential(prog, {})
        out = execute_schedule(prog, reversed_schedule, {}, seed=0)
        assert not np.array_equal(ref["a"], out["a"])

    def test_missing_instances_detected_by_validator(self):
        prog = figure2_loop(20)
        result = recurrence_chain_partition(prog)
        truncated = Schedule.from_phases("truncated", result.schedule.phases[:1])
        report = validate_schedule(prog, truncated, {})
        assert not report.covers_all_instances
        assert not report.ok

    def test_validator_passes_correct_schedule(self):
        prog = figure2_loop(20)
        result = recurrence_chain_partition(prog)
        report = validate_schedule(
            prog, result.schedule, {}, dependences=result.analysis.iteration_dependences
        )
        assert report.ok
        assert report.respects_dependences
        assert "OK" in str(report)

    def test_validator_flags_unsafe_schedule(self):
        """A schedule that runs everything in one fully parallel phase violates
        the dependences and (with enough seeds) the semantics check."""
        prog = figure1_loop(10, 12)
        analysis_result = recurrence_chain_partition(prog)
        flat = Schedule.from_phases(
            "flat",
            [
                ParallelPhase(
                    "all",
                    tuple(
                        ExecutionUnit.single(label, point)
                        for label, point in analysis_result.schedule.instances()
                    ),
                )
            ],
        )
        report = validate_schedule(
            prog, flat, {}, dependences=analysis_result.analysis.iteration_dependences,
            seeds=tuple(range(8)),
        )
        assert not report.respects_dependences
        # the semantics check may or may not catch it for a specific shuffle,
        # but coverage and dependence checking make the report not-ok overall
        assert report.covers_all_instances
        assert not report.ok

    def test_ok_includes_dependence_check(self):
        """A schedule that violates dependences but got lucky on every tested
        shuffle must not report OK: `ok` covers the dependence check whenever
        dependences were supplied (respects defaults to True otherwise)."""
        from repro.runtime.executor import ValidationReport

        lucky = ValidationReport(
            program="p", schedule="s",
            covers_all_instances=True, respects_dependences=False,
            arrays_match=True,
        )
        assert not lucky.ok
        assert "FAILED" in str(lucky)
        no_deps = ValidationReport(
            program="p", schedule="s",
            covers_all_instances=True, respects_dependences=True,
            arrays_match=True,
        )
        assert no_deps.ok

    def test_ok_flags_unsafe_schedule_with_no_semantic_seeds(self):
        """End to end: with zero semantic shuffle seeds (arrays vacuously
        match), a dependence-violating schedule still fails validation."""
        prog = figure1_loop(8, 8)
        analysis_result = recurrence_chain_partition(prog)
        flat = Schedule.from_phases(
            "flat",
            [
                ParallelPhase(
                    "all",
                    tuple(
                        ExecutionUnit.single(label, point)
                        for label, point in analysis_result.schedule.instances()
                    ),
                )
            ],
        )
        report = validate_schedule(
            prog, flat, {}, dependences=analysis_result.analysis.iteration_dependences,
            seeds=(),
        )
        assert report.arrays_match  # vacuous: nothing was executed
        assert not report.respects_dependences
        assert not report.ok


class TestShuffleRng:
    """Intra-phase shuffling draws from a caller-controllable private RNG."""

    def test_explicit_rng_is_reproducible(self):
        import random

        prog = figure1_loop(8, 8)
        result = recurrence_chain_partition(prog)
        a = execute_schedule(prog, result.schedule, {}, rng=random.Random(42))
        b = execute_schedule(prog, result.schedule, {}, rng=random.Random(42))
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_global_random_state_untouched(self):
        import random

        prog = figure1_loop(8, 8)
        result = recurrence_chain_partition(prog)
        random.seed(1234)
        before = random.getstate()
        execute_schedule(prog, result.schedule, {}, seed=7)
        execute_schedule(prog, result.schedule, {}, rng=random.Random(3))
        assert random.getstate() == before

    def test_seed_and_rng_agree_with_sequential_semantics(self):
        import random

        prog = figure2_loop(16)
        result = recurrence_chain_partition(prog)
        reference = execute_sequential(prog, {})
        for kwargs in ({"seed": 5}, {"rng": random.Random(5)}, {"seed": None}):
            out = execute_schedule(prog, result.schedule, {}, **kwargs)
            for name in reference:
                assert np.array_equal(reference[name], out[name])
