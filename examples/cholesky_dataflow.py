#!/usr/bin/env python3
"""Example 4: dataflow-partitioning the NASA Cholesky kernel.

The Cholesky kernel has multiple coupled reference pairs and imperfectly
nested loops, so Algorithm 1 takes its second branch: iterative dataflow
partitioning over the statement-level unified iteration space (§3.3/§3.4).
This script builds the kernel, runs the partitioner, reports the number of
partitioning steps (the paper reports 238 at NMAT=250, M=4, N=40, NRHS=3 —
the count is independent of NMAT), validates the schedule, and compares the
schedule against the paper's PDM code (a DOALL over the L dimension).
"""

import argparse

from repro.analysis.experiments import _cholesky_pdm_schedule
from repro.core import recurrence_chain_partition
from repro.runtime import compare_schemes, validate_schedule
from repro.workloads import cholesky_loop


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nmat", type=int, default=2)
    parser.add_argument("--m", type=int, default=4)
    parser.add_argument("--n", type=int, default=24)
    parser.add_argument("--nrhs", type=int, default=1)
    args = parser.parse_args()

    program = cholesky_loop(nmat=args.nmat, m=args.m, n=args.n, nrhs=args.nrhs)
    print(f"Cholesky kernel: NMAT={args.nmat}, M={args.m}, N={args.n}, NRHS={args.nrhs}")
    print(f"statements: {[s.label for s in program.statements()]}")

    result = recurrence_chain_partition(program)
    print(f"\nscheme               : {result.scheme}")
    print(f"partitioning steps   : {result.schedule.num_phases}  (paper: 238 at full size)")
    print(f"statement instances  : {result.schedule.total_work}")
    print(f"widest wavefront     : {result.schedule.max_parallelism}")

    report = validate_schedule(program, result.schedule, {}, dependences=result.statement_space.rd)
    print(f"validation           : {report}")

    pdm = _cholesky_pdm_schedule(program)
    table = compare_schemes({"REC dataflow": result.schedule, "PDM (DOALL over L)": pdm})
    print("\nSimulated speedups (1-4 CPUs):")
    print(table.format())


if __name__ == "__main__":
    main()
