#!/usr/bin/env python3
"""Example: a client of the memory-resident plan server.

Starts one :class:`~repro.serving.PlanServer` with a persistent process
pool, fires repeated requests for the same loop nests from several client
threads, and prints how the warm paths amortise: the first request of each
program pays planning and the worker fork, every repeat rides the plan
cache and the already-running pool.

The script doubles as the CI serving smoke check: it validates every served
result against the sequential reference, snapshots ``/dev/shm`` before and
after, and exits non-zero on any mismatch or leaked shared-memory segment.
"""

import argparse
import glob
import sys
import threading

import numpy as np

from repro.runtime import execute_sequential
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import PlanServer
from repro.workloads.examples import example3_loop, figure1_loop


def _dev_shm():
    return set(glob.glob("/dev/shm/psm_*"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool workers (default 2)")
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client thread (default 4)")
    parser.add_argument("--threads", type=int, default=2,
                        help="client threads (default 2)")
    args = parser.parse_args()

    backend = "process"
    reason = process_unavailable_reason()
    if reason is not None:
        print(f"process backend unavailable ({reason}); using serial")
        backend = "serial"

    programs = [figure1_loop(12, 12), example3_loop(10)]
    references = [execute_sequential(p, {}) for p in programs]
    shm_before = _dev_shm()
    failures = []

    cfg = ExecConfig(backend=backend, workers=args.workers)
    with PlanServer(default_exec=cfg) as server:

        def client(worker_id: int) -> None:
            for i in range(args.requests):
                which = (worker_id + i) % len(programs)
                response = server.request(programs[which], timeout=120)
                ref = references[which]
                for name in ref:
                    if not np.array_equal(ref[name], response.result.store[name]):
                        failures.append(
                            f"client {worker_id} request {i}: {name!r} diverged"
                        )
                print(
                    f"client {worker_id} req {i}: {programs[which].name:<10} "
                    f"strategy={response.strategy:<22} "
                    f"cache_hit={str(response.plan_cache_hit):<5} "
                    f"pool_reused={str(response.pool_reused):<5} "
                    f"batch={response.batch_size} "
                    f"total={response.timings['total_s'] * 1e3:7.2f} ms"
                )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()

    print(f"\nserver stats: {stats}")

    shm_after = _dev_shm()
    leaked = shm_after - shm_before
    if leaked:
        failures.append(f"leaked shared-memory segments: {sorted(leaked)}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all results validated; no shared-memory segments leaked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
