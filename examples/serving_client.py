#!/usr/bin/env python3
"""Example: a client of the memory-resident plan server.

Starts one :class:`~repro.serving.PlanServer` with a persistent process
pool, fires repeated requests for the same loop nests from several client
threads, and prints how the warm paths amortise: the first request of each
program pays planning and the worker fork, every repeat rides the plan
cache and the already-running pool.

With ``--tcp`` the same traffic goes over the wire transport instead of
in-process submission: ``--tcp self`` starts a loopback
:class:`~repro.serving.transport.TransportServer` in this process and gives
every client thread its own :class:`~repro.serving.transport.TransportClient`
socket; ``--tcp HOST:PORT`` connects to an already-running transport server
elsewhere.

The script doubles as the CI serving smoke check (both modes): it validates
every served result against the sequential reference, snapshots
``/dev/shm`` before and after, and exits non-zero on any mismatch or leaked
shared-memory segment.
"""

import argparse
import contextlib
import glob
import sys
import threading

import numpy as np

from repro.runtime import execute_sequential
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import PlanServer
from repro.serving.transport import TransportClient, TransportServer
from repro.workloads.examples import example3_loop, figure1_loop


def _dev_shm():
    return set(glob.glob("/dev/shm/psm_*"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool workers (default 2)")
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client thread (default 4)")
    parser.add_argument("--threads", type=int, default=2,
                        help="client threads (default 2)")
    parser.add_argument("--tcp", metavar="HOST:PORT",
                        help="use the wire transport: 'self' starts a "
                             "loopback TransportServer in-process, "
                             "HOST:PORT connects to a running one")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="admission bound for the self-hosted "
                             "transport server (default 64)")
    args = parser.parse_args()

    backend = "process"
    reason = process_unavailable_reason()
    if reason is not None:
        print(f"process backend unavailable ({reason}); using serial")
        backend = "serial"

    programs = [figure1_loop(12, 12), example3_loop(10)]
    references = [execute_sequential(p, {}) for p in programs]
    shm_before = _dev_shm()
    failures = []

    cfg = ExecConfig(backend=backend, workers=args.workers)

    with contextlib.ExitStack() as stack:
        if args.tcp is None:
            server = stack.enter_context(PlanServer(default_exec=cfg))
            submit = [server] * args.threads
            stats_source = server
        else:
            if args.tcp == "self":
                transport = stack.enter_context(
                    TransportServer(
                        default_exec=cfg, max_pending=args.max_pending
                    )
                )
                host, port = transport.address
                print(f"self-hosted transport server on {host}:{port}")
                stats_source = transport
            else:
                host, sep, port_s = args.tcp.partition(":")
                if not sep:
                    parser.error("--tcp expects 'self' or HOST:PORT")
                host, port = host, int(port_s)
                stats_source = None
            # one socket per client thread: exercises concurrent
            # connections, per-connection demultiplexing, and busy-retry
            submit = [
                stack.enter_context(TransportClient(host, port, rng_seed=i))
                for i in range(args.threads)
            ]

        def client(worker_id: int) -> None:
            endpoint = submit[worker_id]
            for i in range(args.requests):
                which = (worker_id + i) % len(programs)
                response = endpoint.request(programs[which], timeout=120)
                ref = references[which]
                for name in ref:
                    if not np.array_equal(ref[name], response.result.store[name]):
                        failures.append(
                            f"client {worker_id} request {i}: {name!r} diverged"
                        )
                print(
                    f"client {worker_id} req {i}: {programs[which].name:<10} "
                    f"strategy={response.strategy:<22} "
                    f"cache_hit={str(response.plan_cache_hit):<5} "
                    f"pool_reused={str(response.pool_reused):<5} "
                    f"batch={response.batch_size} "
                    f"total={response.timings['total_s'] * 1e3:7.2f} ms"
                )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = stats_source.stats() if stats_source is not None else None

    if stats is not None:
        print(f"\nserver stats: {stats}")

    shm_after = _dev_shm()
    leaked = shm_after - shm_before
    if leaked:
        failures.append(f"leaked shared-memory segments: {sorted(leaked)}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all results validated; no shared-memory segments leaked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
