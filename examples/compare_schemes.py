#!/usr/bin/env python3
"""Scheme comparison: reproduce the four panels of the paper's figure 3.

For each of the paper's four example loops, build the REC schedule and the
published competitor schedules (PDM, PL, UNIQUE, PAR, DOACROSS), validate them
against the exact dependences, and print the simulated 1–4 CPU speedup tables —
the reproduction of figure 3.  Sizes are scaled down so the exact analysis
finishes in seconds; pass ``--full`` to use sizes closer to the paper's.
"""

import argparse

from repro.analysis.experiments import run_figure3_experiment
from repro.analysis.report import format_speedups

PANELS = {
    "ex1": ("Example 1 (figure-1 loop): REC vs PDM vs PL", {"N1": 40, "N2": 120}, {"N1": 100, "N2": 300}),
    "ex2": ("Example 2 (Ju & Chaudhary): REC vs UNIQUE", {"N": 60}, {"N": 120}),
    "ex3": ("Example 3 (Chen & Yew, imperfect nest): REC vs PAR vs DOACROSS", {"N": 40}, {"N": 80}),
    "ex4": ("Example 4 (Cholesky): REC dataflow vs PDM", {"NMAT": 3, "M": 4, "N": 24, "NRHS": 1},
            {"NMAT": 4, "M": 4, "N": 40, "NRHS": 2}),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use larger problem sizes")
    parser.add_argument("--panel", choices=sorted(PANELS), help="run a single panel")
    args = parser.parse_args()

    keys = [args.panel] if args.panel else list(PANELS)
    for key in keys:
        title, small, full = PANELS[key]
        sizes = full if args.full else small
        print(f"\n=== Figure 3 / {title} ===")
        print(f"sizes: {sizes}")
        result = run_figure3_experiment(key, sizes, validate=(key != "ex4"))
        print(format_speedups(result))
        print(f"phases per scheme: {result['phases']}")
        print(f"winner per CPU count: {result['winner_at']}")


if __name__ == "__main__":
    main()
