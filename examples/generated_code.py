#!/usr/bin/env python3
"""Code generation: the paper-style listing and executable generated Python.

Reproduces the *output* side of the paper: the Example-1-style pseudo-Fortran
listing (DOALL nests for the initial/final partitions, the WHILE-loop ``chain``
subroutine for the intermediate set) and the executable Python the package
generates for the same schedule, which is run and checked against the
sequential loop.
"""

import numpy as np

from repro.codegen import (
    compile_function,
    generate_chain_function,
    generate_schedule_runner,
    rec_partition_listing,
)
from repro.core import AffineRecurrence, recurrence_chain_partition, symbolic_three_set_partition
from repro.dependence import DependenceAnalysis, symbolic_dependence_relation
from repro.ir.semantics import DEFAULT_SEMANTICS
from repro.runtime import execute_sequential, make_store
from repro.workloads import figure1_loop


def main() -> None:
    # 1. the paper-style listing from the symbolic partition (rational skeleton)
    program = figure1_loop(10, 10)
    relation = symbolic_dependence_relation(program)
    partition = symbolic_three_set_partition(program.iteration_space(), relation)
    recurrence = AffineRecurrence.from_pair(DependenceAnalysis(program, {}).single_coupled_pair())
    print("=== Example-1-style listing (pseudo-Fortran skeleton) ===")
    print(rec_partition_listing(partition, recurrence, "s(I1,I2)", order=["I1", "I2"]))

    # 2. executable generated Python: the chain walker and the schedule runner
    result = recurrence_chain_partition(figure1_loop(20, 30))
    chain_src = generate_chain_function(result.recurrence, 2)
    print("\n=== generated chain walker (Python) ===")
    print(chain_src)
    follow_chain = compile_function(chain_src, "follow_chain")
    p2 = set(result.partition.p2)
    chains = [follow_chain(start, lambda p: p in p2) for start in sorted(result.partition.w)]
    print(f"walked {len(chains)} chains, longest {max((len(c) for c in chains), default=0)}")

    program = figure1_loop(8, 9)
    result = recurrence_chain_partition(program)
    runner_src = generate_schedule_runner(program, result.schedule)
    runner = compile_function(runner_src, "run_schedule")
    store = make_store(program)
    semantics = {s.label: (s.semantics or DEFAULT_SEMANTICS) for s in program.statements()}
    runner(store, semantics)
    reference = execute_sequential(program, {})
    match = all(np.array_equal(reference[k], store[k]) for k in reference)
    print(f"\ngenerated schedule runner reproduces the sequential result: {match}")


if __name__ == "__main__":
    main()
