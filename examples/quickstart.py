#!/usr/bin/env python3
"""Quickstart: plan, inspect and validate the paper's running example.

Runs the unified planning facade on the figure-1 loop

    DO I1 = 1, N1
      DO I2 = 1, N2
        a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)

``repro.plan`` walks the strategy fallback chain (Algorithm 1's
recurrence-chain branch wins here), and the returned ``Plan`` carries the
three-set partition, the recurrence chains, the Theorem-1 bound and the
schedule; ``Plan.validate()`` checks that executing the parallel schedule
gives exactly the same array contents as the sequential loop.
"""

import repro
from repro.analysis.report import format_table
from repro.runtime import speedup_curve


def main(n1: int = 30, n2: int = 100) -> None:
    program = repro.workloads.figure1_loop(n1, n2)
    print(program)
    print()

    result = repro.plan(program)
    print(result.explain())
    print()
    counts = result.partition.counts()
    print(
        format_table(
            ["set", "iterations"],
            [[name, counts[name]] for name in ("space", "P1", "P2", "P3", "W")],
        )
    )
    print(f"chains          : {len(result.chains)} "
          f"(longest {result.longest_chain()}, Theorem 1 bound {result.chain_length_bound()})")
    print(f"phases          : {result.schedule.num_phases}")
    print(f"ideal speedup   : {result.schedule.ideal_speedup():.1f}")

    print(f"validation      : {result.validate()}")

    # A re-plan of the same nest is served from the plan cache.
    assert repro.plan(repro.workloads.figure1_loop(n1, n2)) is result

    print("\nSimulated speedups (4-CPU SMP cost model):")
    curve = speedup_curve(result.schedule, (1, 2, 3, 4))
    print(format_table(["CPUs", "speedup"], [[p, f"{s:.2f}"] for p, s in curve.items()]))


if __name__ == "__main__":
    main()
