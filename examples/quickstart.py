#!/usr/bin/env python3
"""Quickstart: partition the paper's running example and validate the result.

Runs the recurrence-chain partitioner (Algorithm 1) on the figure-1 loop

    DO I1 = 1, N1
      DO I2 = 1, N2
        a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)

prints the three-set partition, the recurrence chains, the Theorem-1 bound and
the simulated speedups, and checks that executing the parallel schedule gives
exactly the same array contents as the sequential loop.
"""

from repro.analysis.report import format_table
from repro.core import recurrence_chain_partition
from repro.runtime import speedup_curve, validate_schedule
from repro.workloads import figure1_loop


def main(n1: int = 30, n2: int = 100) -> None:
    program = figure1_loop(n1, n2)
    print(program)
    print()

    result = recurrence_chain_partition(program)
    print(f"scheme          : {result.scheme}")
    counts = result.partition.counts()
    print(
        format_table(
            ["set", "iterations"],
            [[name, counts[name]] for name in ("space", "P1", "P2", "P3", "W")],
        )
    )
    print(f"chains          : {len(result.chains)} "
          f"(longest {result.longest_chain()}, Theorem 1 bound {result.chain_length_bound()})")
    print(f"phases          : {result.schedule.num_phases}")
    print(f"ideal speedup   : {result.schedule.ideal_speedup():.1f}")

    report = validate_schedule(
        program, result.schedule, {}, dependences=result.analysis.iteration_dependences
    )
    print(f"validation      : {report}")

    print("\nSimulated speedups (4-CPU SMP cost model):")
    curve = speedup_curve(result.schedule, (1, 2, 3, 4))
    print(format_table(["CPUs", "speedup"], [[p, f"{s:.2f}"] for p, s in curve.items()]))


if __name__ == "__main__":
    main()
